//! The pluggable LLM executor layer.
//!
//! The engine used to hardcode the paper's two serving fidelities as an
//! inlined enum; every future resource model (paged/chunked batching,
//! multi-replica sharding, disaggregated prefill) would have grown that
//! match. This module splits the concern behind a trait boundary, the way
//! DSLab's dslab-dag keeps resource models behind its scheduler/resource
//! traits:
//!
//! * [`ExecutorBackend`] — what the engine needs from a pool of LLM
//!   executors: **place** a task on an executor (routing), **admit** it
//!   into a batch, advance a backend timer (**step**), remove a finished
//!   task (**drain**), and expose an **occupancy/capacity view** per
//!   executor.
//! * [`analytic::AnalyticExec`] — the paper's *simulator*: rate-rescaling
//!   batching that settles decode progress on every membership change and
//!   re-posts finish events at the new batch rate.
//! * [`token_level::TokenExec`] — the paper's *testbed* stand-in:
//!   per-iteration continuous batching (requests join at iteration
//!   boundaries, every iteration costs `l(batch)` and emits `chunk`
//!   tokens per request).
//! * [`cluster::ClusterExec`] — a heterogeneous multi-group cluster:
//!   replicas carry per-group latency curves and batch capacities
//!   (from a [`ClusterSpec`](llmsched_cluster::ClusterSpec)), and
//!   placement is delegated to a pluggable
//!   [`Router`](llmsched_cluster::Router) policy instead of the paper's
//!   fixed least-loaded rule.
//! * [`disagg::DisaggExec`] — disaggregated prefill/decode serving: a
//!   request first occupies a dedicated prefill replica for
//!   `prompt_tokens × prefill_per_token`, pays a KV-cache
//!   `transfer_delay`, and only then joins a decode batch on the replica
//!   the router chose at admission. Decode proceeds analytically
//!   (rate-rescaling), so the backend is event-sparse: one
//!   [`Event::LlmStep`] per admitted task (the prefill→decode handoff)
//!   plus re-timed [`Event::TaskFinish`]s.
//! * [`pool`] — backend-agnostic pool machinery: the
//!   [`EngineMode`](pool::EngineMode) → backend factory and the
//!   occupancy-view helpers the engine shares across backends.
//!
//! Backends interact with the engine through [`ExecCtx`]: they may read
//! the clock and the reference latency curve, and post [`Event`]s —
//! either a [`Event::TaskFinish`] for a task whose completion time is now
//! known (analytic re-timing) or a [`Event::LlmStep`] wake-up for their
//! own deferred work (the token-level backend's iteration loop, the
//! disaggregated backend's prefill→decode handoffs). The engine remains
//! the only place that mutates job/stage/task state; the reveal protocol
//! of §IV-A never leaks into backends.

pub mod analytic;
mod batching;
pub mod cluster;
pub mod disagg;
pub mod pool;
pub(crate) mod sharded;
pub mod token_level;

pub use analytic::AnalyticExec;
pub use cluster::ClusterExec;
pub use disagg::DisaggExec;
pub use pool::{build_backend, EngineMode};
pub use token_level::TokenExec;

use llmsched_dag::time::SimTime;
use llmsched_dag::work::LlmWork;
use llmsched_telemetry::{Probe, ProbeEvent};

use crate::event::{Event, EventQueue};
use crate::latency::LatencyProfile;
use crate::state::JobRt;

/// Identifies one LLM task by the engine's dense coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlmTaskRef {
    /// Dense job index in the engine's job table.
    pub job: usize,
    /// Stage id within the job.
    pub stage: u32,
    /// Task index within the stage.
    pub task: u32,
}

/// One event a backend asked the engine to schedule.
///
/// Backends never touch the event queue or the job table directly: hooks
/// buffer their requests here and the *caller* materializes them — the
/// sequential engine immediately after the hook returns (stamping finish
/// epochs via [`flush_posts`]), the partitioned engine's shard workers
/// into an epoch-shadow first and the merge barrier afterwards. Keeping
/// epoch assignment out of the backend is what lets shard workers run
/// hooks with only *shared* access to the job table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Post {
    /// `task` finishes at `at` (superseding any earlier finish event for
    /// it; the flusher bumps the task's epoch to invalidate those).
    Finish {
        /// The finishing task.
        task: LlmTaskRef,
        /// Absolute finish time.
        at: SimTime,
    },
    /// A backend wake-up ([`Event::LlmStep`]) for executor `exec` at `at`;
    /// `epoch` must match the backend's step epoch when the event fires.
    Step {
        /// LLM executor index (backend-local; sharded wrappers remap it
        /// to the global index before the flush).
        exec: usize,
        /// Backend step epoch.
        epoch: u64,
        /// Wake-up time.
        at: SimTime,
    },
}

/// The slice of engine state a backend may touch while handling a hook.
///
/// Rebuilt per call; borrows the engine's clock, the shared decode-latency
/// curve and a buffer of [`Post`]s the caller flushes after the hook.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The reference decode-latency curve ([`ClusterConfig::latency`]
    /// (crate::engine::ClusterConfig::latency)). Homogeneous backends decode
    /// with it; cluster backends carry per-group curves and use this only
    /// as the normalization reference.
    pub latency: &'a LatencyProfile,
    /// Events the backend wants scheduled, in emission order. The caller
    /// drains this after the hook returns (see [`flush_posts`]).
    pub posts: &'a mut Vec<Post>,
    /// The run's telemetry probe, present only while one is enabled —
    /// `None` costs backends a single branch per emission (see
    /// [`ExecCtx::emit`]). Shard workers also get `None`: their hooks run
    /// concurrently, so the sharded wrapper re-emits occupancy events
    /// with global executor indices at the merge barrier instead.
    pub probe: Option<&'a mut dyn Probe>,
}

impl ExecCtx<'_> {
    /// Delivers `ev` to the probe if one is enabled. Call sites build the
    /// event inline, so a disabled probe pays only the `None` check.
    pub fn emit(&mut self, ev: ProbeEvent) {
        if let Some(p) = self.probe.as_mut() {
            p.record(&ev);
        }
    }

    /// Schedules `task` to finish at `at`, invalidating any finish event
    /// posted for it earlier (per-task epochs make stale events no-ops).
    pub fn post_finish(&mut self, task: LlmTaskRef, at: SimTime) {
        self.posts.push(Post::Finish { task, at });
    }

    /// Schedules a backend wake-up ([`Event::LlmStep`]) for executor
    /// `exec` at `at`; `epoch` must match the backend's current step epoch
    /// when the event fires, or the step is discarded as stale.
    pub fn post_step(&mut self, exec: usize, epoch: u64, at: SimTime) {
        self.posts.push(Post::Step { exec, epoch, at });
    }
}

/// Drains buffered [`Post`]s into the event queue, stamping each finish
/// with a freshly bumped per-task epoch. Push order equals emission order,
/// so event sequence numbers are exactly what the pre-buffering engine
/// assigned inline.
pub fn flush_posts(posts: &mut Vec<Post>, jobs: &mut [JobRt], queue: &mut EventQueue) {
    for p in posts.drain(..) {
        match p {
            Post::Finish { task, at } => {
                let epoch = jobs[task.job].bump_task_epoch(task.stage, task.task);
                queue.push(
                    at,
                    Event::TaskFinish {
                        job: task.job,
                        stage: task.stage,
                        task: task.task,
                        epoch,
                    },
                );
            }
            Post::Step { exec, epoch, at } => queue.push(at, Event::LlmStep { exec, epoch }),
        }
    }
}

/// What one backend timer event changed.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Tasks whose decoding completed during this step, in completion
    /// order. The engine runs its completion cascade for each.
    pub finished: Vec<LlmTaskRef>,
    /// Whether the step changed any state a scheduler could observe
    /// (stale epochs and no-op steps return `false` to suppress a
    /// scheduler invocation).
    pub effective: bool,
}

impl StepOutcome {
    /// A stale or no-op step: nothing finished, nothing observable moved.
    pub fn stale() -> Self {
        StepOutcome::default()
    }
}

/// A pool of LLM executors under one batching/serving model.
///
/// The engine owns exactly one backend (chosen from
/// [`pool::EngineMode`] via [`pool::build_backend`]) and talks to it only
/// through this trait:
///
/// * [`place`](ExecutorBackend::place) when the dispatcher routes a
///   ready LLM task (the default is the paper's least-loaded rule;
///   cluster backends delegate to their
///   [`Router`](llmsched_cluster::Router)),
/// * [`admit`](ExecutorBackend::admit) when the dispatcher places a task
///   on the chosen executor,
/// * [`step`](ExecutorBackend::step) when a [`Event::LlmStep`] the
///   backend posted comes due,
/// * [`drain`](ExecutorBackend::drain) when a task's completion is
///   processed (the batch slot must be released synchronously),
/// * [`occupancy`](ExecutorBackend::occupancy) /
///   [`capacity`](ExecutorBackend::capacity) whenever placement,
///   utilization accounting or the scheduler-visible
///   [`LlmExecutorView`](crate::state::LlmExecutorView)s need batch
///   sizes.
///
/// # Invariants
///
/// Implementations must keep, for every executor index `e`:
///
/// 1. `occupancy(e)` equals admitted − drained tasks for `e` (admission
///    is synchronous, whatever internal join staging — or prefill
///    transit — is used);
/// 2. a task admitted exactly once is eventually reported finished
///    exactly once — via a posted [`Event::TaskFinish`] or a
///    [`StepOutcome::finished`] entry — provided posted events keep
///    being delivered;
/// 3. `drain` of a task already removed by
///    [`step`](ExecutorBackend::step) is a no-op (the engine always
///    drains on completion, including completions the backend itself
///    reported);
/// 4. `place` only returns executors with `occupancy(e) < capacity(e)`.
///
/// Backends must be [`Send`]: the partitioned engine steps disjoint
/// backend shards on scoped worker threads between scheduler barriers.
pub trait ExecutorBackend: std::fmt::Debug + Send {
    /// Short backend family name (e.g. `"analytic"`, `"cluster"`).
    fn name(&self) -> &'static str;

    /// Full self-description for results and reports; backends with a
    /// configurable routing policy append it (e.g. `"cluster/jsq"`).
    fn descriptor(&self) -> String {
        self.name().to_string()
    }

    /// Number of LLM executors in the pool (for disaggregated backends:
    /// the decode replicas — prefill replicas are internal).
    fn n_execs(&self) -> usize;

    /// Number of tasks currently holding a batch slot on executor
    /// `exec` (running, staged to join at the next boundary, or in
    /// prefill transit toward it).
    fn occupancy(&self, exec: usize) -> usize;

    /// Maximum batch slots on executor `exec`.
    fn capacity(&self, exec: usize) -> usize;

    /// Streams `(occupancy, capacity)` of every executor, in index
    /// order, to `f`. The engine's per-timestamp utilization integrals
    /// and per-invocation occupancy snapshots go through this instead
    /// of calling [`occupancy`](ExecutorBackend::occupancy) per
    /// executor, so composite backends (the sharded wrapper) can walk
    /// their pools directly rather than translating every index. The
    /// default loops over the per-executor accessors; overrides must
    /// visit the exact same values in the same order.
    fn for_each_slot(&self, f: &mut dyn FnMut(usize, usize)) {
        for e in 0..self.n_execs() {
            f(self.occupancy(e), self.capacity(e));
        }
    }

    /// Routes `task` to an executor with a free slot, or `None` when the
    /// pool is full. The default is the paper's least-loaded placement
    /// (fewest occupied slots, ties by index); cluster backends override
    /// it with their configured [`Router`](llmsched_cluster::Router).
    fn place(&mut self, task: LlmTaskRef, work: LlmWork) -> Option<usize> {
        let _ = (task, work);
        (0..self.n_execs())
            .filter(|&e| self.occupancy(e) < self.capacity(e))
            .min_by_key(|&e| self.occupancy(e))
    }

    /// Admits `task` (with token counts `work`) into executor `exec`'s
    /// batch. Called by the dispatcher after readiness checks, with `exec`
    /// the executor [`place`](ExecutorBackend::place) chose.
    fn admit(&mut self, exec: usize, task: LlmTaskRef, work: LlmWork, cx: &mut ExecCtx<'_>);

    /// Handles a [`Event::LlmStep`] wake-up this backend posted earlier.
    /// Returns the tasks that finished and whether anything observable
    /// changed; a mismatched `epoch` must return [`StepOutcome::stale`].
    fn step(&mut self, exec: usize, epoch: u64, cx: &mut ExecCtx<'_>) -> StepOutcome;

    /// Releases `task`'s batch slot on executor `exec`. Called by the
    /// engine for every LLM task completion; must be a no-op if the
    /// backend already removed the task during the step that finished it.
    fn drain(&mut self, exec: usize, task: LlmTaskRef, cx: &mut ExecCtx<'_>);

    /// A conservative lower bound on the earliest future time at which
    /// this backend could complete a task (i.e. produce a
    /// scheduler-relevant event). The partitioned engine advances through
    /// `[now, bound)` without scheduler barriers: every event inside the
    /// window is guaranteed to be a stale finish, an ineffective step, or
    /// an internal hand-off that changes nothing a scheduler observes.
    ///
    /// Contract: with the backend in its state at `now` and no further
    /// admissions, no valid [`Event::TaskFinish`] and no
    /// [`StepOutcome`] with `effective == true` or non-empty `finished`
    /// may occur strictly before the returned time. An idle backend may
    /// return [`SimTime`]`(u64::MAX)`; the default returns `now`
    /// (a vacuous bound — the window never opens), which is always safe.
    fn lookahead(&self, now: SimTime, latency: &LatencyProfile) -> SimTime {
        let _ = latency;
        now
    }
}

//! The heterogeneous multi-group cluster backend.
//!
//! A [`ClusterExec`] serves from the flat replica table of a
//! [`ClusterSpec`]: each replica inherits its group's decode-latency
//! curve and batch capacity, so a cluster can mix, say, a small pool of
//! fast high-capacity replicas with a larger pool of slow ones. Within a
//! replica, decoding follows the same rate-rescaling analytics as
//! [`AnalyticExec`](super::AnalyticExec) — settle progress on every batch
//! membership change, re-post finish events at the new rate — but against
//! the *replica's own* latency curve rather than the engine-wide
//! reference curve.
//!
//! Placement is what makes this backend cluster-shaped: instead of the
//! paper's fixed least-loaded rule, [`ExecutorBackend::place`] delegates
//! to the [`Router`] the spec configured (least-loaded,
//! join-shortest-queue, or session affinity), fed per-replica occupancy,
//! capacity and queued decode tokens.

use llmsched_cluster::{ClusterSpec, ReplicaView, RouteRequest, Router};
use llmsched_dag::time::SimTime;
use llmsched_dag::work::LlmWork;

use super::batching::ReplicaBatch;
use super::{ExecCtx, ExecutorBackend, LlmTaskRef, StepOutcome};
use crate::latency::LatencyProfile;

/// The heterogeneous routed multi-replica backend.
#[derive(Debug)]
pub struct ClusterExec {
    units: Vec<ReplicaBatch>,
    router: Box<dyn Router>,
    /// Reused router-view buffer: refilled per `place` call instead of
    /// collecting a fresh `Vec` (placement is per-dispatched-task hot).
    view_scratch: Vec<ReplicaView>,
}

impl ClusterExec {
    /// Builds the backend a [`ClusterSpec`] describes (serving replicas
    /// only; when the spec is disaggregated the prefill group is skipped
    /// here — use [`DisaggExec`](super::DisaggExec) for the split path).
    ///
    /// # Panics
    /// Panics if the spec fails [`ClusterSpec::validate`].
    pub fn new(spec: &ClusterSpec) -> Self {
        spec.validate().expect("invalid cluster spec");
        Self::from_units(ReplicaBatch::table(spec), spec.routing.build())
    }

    /// A backend over an explicit replica-batch table — the partitioned
    /// engine builds one per shard from a contiguous chunk of the full
    /// table. The shard-local `router` is only consulted if `place` is
    /// called on the shard directly; the sharded wrapper routes globally.
    pub(super) fn from_units(units: Vec<ReplicaBatch>, router: Box<dyn Router>) -> Self {
        ClusterExec {
            units,
            router,
            view_scratch: Vec::new(),
        }
    }

    /// The router view of local replica `local`, labelled with its global
    /// executor index (the sharded wrapper composes global view tables).
    pub(crate) fn unit_view(&self, local: usize, global: usize) -> ReplicaView {
        self.units[local].view(global, 0, 0)
    }
}

impl ExecutorBackend for ClusterExec {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn descriptor(&self) -> String {
        format!("cluster/{}", self.router.name())
    }

    fn n_execs(&self) -> usize {
        self.units.len()
    }

    fn occupancy(&self, exec: usize) -> usize {
        self.units[exec].len()
    }

    fn capacity(&self, exec: usize) -> usize {
        self.units[exec].capacity
    }

    fn for_each_slot(&self, f: &mut dyn FnMut(usize, usize)) {
        for u in &self.units {
            f(u.len(), u.capacity);
        }
    }

    fn place(&mut self, task: LlmTaskRef, work: LlmWork) -> Option<usize> {
        let mut views = std::mem::take(&mut self.view_scratch);
        views.clear();
        views.extend(self.units.iter().enumerate().map(|(i, u)| u.view(i, 0, 0)));
        let chosen = self.router.route(
            &views,
            RouteRequest {
                job: task.job as u64,
                tokens: work.folded_tokens(),
            },
        );
        self.view_scratch = views;
        chosen
    }

    fn admit(&mut self, exec: usize, task: LlmTaskRef, work: LlmWork, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        unit.settle(cx.now);
        unit.join(task, work.folded_tokens());
        unit.retime(cx);
        if cx.probe.is_some() {
            let view = self.unit_view(exec, exec);
            cx.emit(llmsched_telemetry::ProbeEvent::Routed {
                at: cx.now,
                job_index: task.job as u32,
                exec: exec as u32,
                group: view.group as u32,
                policy: self.router.name(),
            });
            cx.emit(llmsched_telemetry::ProbeEvent::BatchAdmit {
                at: cx.now,
                exec: exec as u32,
                occupancy: view.occupancy as u32,
                capacity: view.capacity as u32,
            });
        }
    }

    fn step(&mut self, _exec: usize, _epoch: u64, _cx: &mut ExecCtx<'_>) -> StepOutcome {
        // Fully analytic: completions arrive as re-timed finish events,
        // never via step wake-ups.
        StepOutcome::stale()
    }

    fn drain(&mut self, exec: usize, task: LlmTaskRef, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        unit.settle(cx.now);
        unit.drain(task);
        unit.retime(cx);
        let occupancy = self.units[exec].len() as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchDrain {
            at: cx.now,
            exec: exec as u32,
            occupancy,
        });
    }

    /// Minimum over replicas of each replica's own-curve lower bound (the
    /// engine-wide reference curve is irrelevant here: every replica
    /// decodes against its group curve).
    fn lookahead(&self, now: SimTime, _latency: &LatencyProfile) -> SimTime {
        self.units
            .iter()
            .map(|u| u.lookahead(now))
            .min()
            .unwrap_or(SimTime(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventQueue};
    use llmsched_cluster::{LatencyProfile, ReplicaGroup, RoutingPolicy};
    use llmsched_dag::time::{SimDuration, SimTime};

    fn profile(ms_per_token: u64) -> LatencyProfile {
        LatencyProfile::new(vec![(1, SimDuration::from_millis(ms_per_token))]).unwrap()
    }

    fn hetero_spec(routing: RoutingPolicy) -> ClusterSpec {
        ClusterSpec::new(
            vec![
                ReplicaGroup::new("fast", 1, 4, profile(10)),
                ReplicaGroup::new("slow", 2, 2, profile(40)),
            ],
            routing,
        )
    }

    fn t(job: usize, task: u32) -> LlmTaskRef {
        LlmTaskRef {
            job,
            stage: 0,
            task,
        }
    }

    fn w(tokens: u64) -> LlmWork {
        LlmWork {
            prompt_tokens: 0,
            output_tokens: tokens,
        }
    }

    #[test]
    fn flattens_groups_with_per_replica_capacity() {
        let be = ClusterExec::new(&hetero_spec(RoutingPolicy::LeastLoaded));
        assert_eq!(be.n_execs(), 3);
        assert_eq!((be.capacity(0), be.capacity(1), be.capacity(2)), (4, 2, 2));
        assert_eq!(be.descriptor(), "cluster/least-loaded");
        assert_eq!(be.name(), "cluster");
    }

    #[test]
    fn decode_rate_follows_the_replica_group_curve() {
        // Same 100-token task on the fast (10 ms/tok) and a slow
        // (40 ms/tok) replica: finish events 1 s vs 4 s out.
        let reference = profile(10);
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = ClusterExec::new(&hetero_spec(RoutingPolicy::LeastLoaded));
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &reference,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0, 0), w(100), &mut cx);
        be.admit(1, t(0, 1), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let mut finishes = Vec::new();
        while let Some((time, ev)) = queue.pop() {
            if let Event::TaskFinish { task, .. } = ev {
                finishes.push((task, time.as_secs_f64()));
            }
        }
        finishes.sort_by_key(|f| f.0);
        assert!((finishes[0].1 - 1.0).abs() < 1e-9, "fast replica: 1 s");
        assert!((finishes[1].1 - 4.0).abs() < 1e-9, "slow replica: 4 s");
    }

    #[test]
    fn router_policy_drives_placement() {
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(4)];
        let mut be = ClusterExec::new(&hetero_spec(RoutingPolicy::JoinShortestQueue));
        let reference = profile(10);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &reference,
            posts: &mut posts,
            probe: None,
        };
        // Load the fast replica with one huge request; JSQ then prefers
        // the token-empty slow replicas even though occupancies tie after
        // the first admit.
        let first = be.place(t(0, 0), w(5000)).unwrap();
        be.admit(first, t(0, 0), w(5000), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let second = be.place(t(0, 1), w(10)).unwrap();
        assert_ne!(second, first, "JSQ avoids the replica holding 5k tokens");
    }

    #[test]
    fn drain_releases_slot_and_queue_tokens() {
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(4)];
        let mut be = ClusterExec::new(&hetero_spec(RoutingPolicy::LeastLoaded));
        let reference = profile(10);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &reference,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0, 0), w(100), &mut cx);
        assert_eq!(be.occupancy(0), 1);
        assert_eq!(be.units[0].pending_tokens, 100);
        be.drain(0, t(0, 0), &mut cx);
        assert_eq!(be.occupancy(0), 0);
        assert_eq!(be.units[0].pending_tokens, 0);
        // Draining an absent task is a no-op.
        be.drain(0, t(0, 0), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.units[0].pending_tokens, 0);
    }

    #[test]
    fn full_cluster_refuses_placement() {
        let spec = ClusterSpec::new(
            vec![ReplicaGroup::new("tiny", 1, 1, profile(10))],
            RoutingPolicy::LeastLoaded,
        );
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = ClusterExec::new(&spec);
        let reference = profile(10);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &reference,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0, 0), w(10), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.place(t(0, 1), w(10)), None);
    }
}

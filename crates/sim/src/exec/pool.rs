//! Backend-agnostic pool machinery: fidelity selection and the placement
//! / occupancy-view helpers the engine uses over any
//! [`ExecutorBackend`].

use super::{AnalyticExec, ExecutorBackend, TokenExec};
use crate::engine::ClusterConfig;
use crate::state::LlmExecutorView;

/// LLM execution fidelity: which [`ExecutorBackend`] a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Rate-rescaling analytic batching (fast; the paper's simulator).
    #[default]
    Analytic,
    /// Per-iteration continuous batching (the paper's testbed stand-in).
    TokenLevel,
}

/// Builds the executor backend a cluster configuration asks for. The only
/// place the workspace dispatches on [`EngineMode`]; everything downstream
/// of here is trait-object code.
pub fn build_backend(cfg: &ClusterConfig) -> Box<dyn ExecutorBackend> {
    match cfg.mode {
        EngineMode::Analytic => Box::new(AnalyticExec::new(cfg.llm_executors)),
        EngineMode::TokenLevel => Box::new(TokenExec::new(cfg.llm_executors, cfg.iteration_chunk)),
    }
}

/// The paper's load balancing: the executor with the fewest occupied batch
/// slots that still has a free one (ties broken by index).
pub fn least_loaded(backend: &dyn ExecutorBackend, max_batch: usize) -> Option<usize> {
    (0..backend.n_execs())
        .filter(|&e| backend.occupancy(e) < max_batch)
        .min_by_key(|&e| backend.occupancy(e))
}

/// Scheduler-visible occupancy snapshot of every executor.
pub fn views(backend: &dyn ExecutorBackend, max_batch: usize) -> Vec<LlmExecutorView> {
    (0..backend.n_execs())
        .map(|e| LlmExecutorView {
            index: e,
            batch_len: backend.occupancy(e),
            max_batch,
        })
        .collect()
}

/// `(occupied slots, non-idle executors)` across the pool — the inputs to
/// the engine's utilization integrals.
pub fn slot_stats(backend: &dyn ExecutorBackend) -> (usize, usize) {
    let mut slots = 0usize;
    let mut busy = 0usize;
    for e in 0..backend.n_execs() {
        let occ = backend.occupancy(e);
        slots += occ;
        busy += usize::from(occ > 0);
    }
    (slots, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;

    fn cfg(mode: EngineMode) -> ClusterConfig {
        ClusterConfig {
            regular_executors: 1,
            llm_executors: 3,
            max_batch: 4,
            latency: LatencyProfile::default(),
            mode,
            iteration_chunk: 2,
        }
    }

    #[test]
    fn factory_builds_the_requested_backend() {
        let a = build_backend(&cfg(EngineMode::Analytic));
        assert_eq!(a.name(), "analytic");
        assert_eq!(a.n_execs(), 3);
        let t = build_backend(&cfg(EngineMode::TokenLevel));
        assert_eq!(t.name(), "token-level");
        assert_eq!(t.n_execs(), 3);
    }

    #[test]
    fn empty_pool_has_no_placement() {
        let cfg = ClusterConfig {
            llm_executors: 0,
            ..cfg(EngineMode::Analytic)
        };
        let be = build_backend(&cfg);
        assert_eq!(least_loaded(&*be, 8), None);
        assert!(views(&*be, 8).is_empty());
        assert_eq!(slot_stats(&*be), (0, 0));
    }
}

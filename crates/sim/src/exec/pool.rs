//! Backend-agnostic pool machinery: fidelity selection and the
//! occupancy-view helpers the engine uses over any [`ExecutorBackend`].

use llmsched_cluster::ClusterSpec;

use super::{AnalyticExec, ClusterExec, DisaggExec, ExecutorBackend, TokenExec};
use crate::engine::ClusterConfig;
use crate::state::LlmExecutorView;

/// LLM execution fidelity: which [`ExecutorBackend`] a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Rate-rescaling analytic batching (fast; the paper's simulator).
    #[default]
    Analytic,
    /// Per-iteration continuous batching (the paper's testbed stand-in).
    TokenLevel,
    /// Heterogeneous multi-group cluster with routed placement
    /// ([`ClusterExec`]); uses [`ClusterConfig::spec`], or a homogeneous
    /// spec derived from the scalar fields when none is given.
    Cluster,
    /// Disaggregated prefill/decode serving ([`DisaggExec`]); uses
    /// [`ClusterConfig::spec`], or a derived layout with one dedicated
    /// prefill replica when none is given.
    Disagg,
}

/// Builds the executor backend a cluster configuration asks for. The only
/// place the workspace dispatches on [`EngineMode`]; everything downstream
/// of here is trait-object code.
///
/// # Panics
/// Panics if [`ClusterConfig::spec`] is present but invalid, or lacks a
/// disaggregation layout in [`EngineMode::Disagg`].
pub fn build_backend(cfg: &ClusterConfig) -> Box<dyn ExecutorBackend> {
    match cfg.mode {
        EngineMode::Analytic => Box::new(AnalyticExec::new(cfg.llm_executors, cfg.max_batch)),
        EngineMode::TokenLevel => Box::new(TokenExec::new(
            cfg.llm_executors,
            cfg.max_batch,
            cfg.iteration_chunk,
        )),
        EngineMode::Cluster => {
            let spec = cfg.spec.clone().unwrap_or_else(|| {
                ClusterSpec::homogeneous(cfg.llm_executors, cfg.max_batch, cfg.latency.clone())
            });
            Box::new(ClusterExec::new(&spec))
        }
        EngineMode::Disagg => {
            let spec = cfg.spec.clone().unwrap_or_else(|| {
                ClusterSpec::disaggregated(cfg.llm_executors, cfg.max_batch, cfg.latency.clone())
            });
            Box::new(DisaggExec::new(&spec))
        }
    }
}

/// True if any executor can admit one more task.
pub fn has_free_slot(backend: &dyn ExecutorBackend) -> bool {
    (0..backend.n_execs()).any(|e| backend.occupancy(e) < backend.capacity(e))
}

/// Total batch slots across the pool.
pub fn total_slots(backend: &dyn ExecutorBackend) -> usize {
    (0..backend.n_execs()).map(|e| backend.capacity(e)).sum()
}

/// Scheduler-visible occupancy snapshot of every executor.
pub fn views(backend: &dyn ExecutorBackend) -> Vec<LlmExecutorView> {
    let mut out = Vec::new();
    views_into(backend, &mut out);
    out
}

/// Refreshes a reused occupancy-view buffer in place — the engine calls
/// this once per scheduler invocation instead of collecting a fresh `Vec`.
pub fn views_into(backend: &dyn ExecutorBackend, out: &mut Vec<LlmExecutorView>) {
    out.clear();
    let mut index = 0usize;
    backend.for_each_slot(&mut |occ, cap| {
        out.push(LlmExecutorView {
            index,
            batch_len: occ,
            max_batch: cap,
        });
        index += 1;
    });
}

/// `(occupied slots, non-idle executors)` across the pool — the inputs to
/// the engine's utilization integrals, probed at every timestamp advance
/// (hence the bulk walk rather than per-executor accessor calls).
pub fn slot_stats(backend: &dyn ExecutorBackend) -> (usize, usize) {
    let mut slots = 0usize;
    let mut busy = 0usize;
    backend.for_each_slot(&mut |occ, _| {
        slots += occ;
        busy += usize::from(occ > 0);
    });
    (slots, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;
    use llmsched_cluster::{ReplicaGroup, RoutingPolicy};

    fn cfg(mode: EngineMode) -> ClusterConfig {
        ClusterConfig {
            regular_executors: 1,
            llm_executors: 3,
            max_batch: 4,
            latency: LatencyProfile::default(),
            mode,
            iteration_chunk: 2,
            spec: None,
            parallelism: crate::par::Parallelism::Off,
            coalescing: true,
            elision: true,
            pool_threads: None,
            decision_horizon: None,
        }
    }

    #[test]
    fn factory_builds_the_requested_backend() {
        let a = build_backend(&cfg(EngineMode::Analytic));
        assert_eq!(a.name(), "analytic");
        assert_eq!(a.descriptor(), "analytic");
        assert_eq!(a.n_execs(), 3);
        let t = build_backend(&cfg(EngineMode::TokenLevel));
        assert_eq!(t.name(), "token-level");
        assert_eq!(t.n_execs(), 3);
    }

    #[test]
    fn cluster_modes_derive_specs_from_scalar_fields() {
        let c = build_backend(&cfg(EngineMode::Cluster));
        assert_eq!(c.name(), "cluster");
        assert_eq!(c.descriptor(), "cluster/least-loaded");
        assert_eq!(c.n_execs(), 3);
        assert_eq!(total_slots(&*c), 12);

        let d = build_backend(&cfg(EngineMode::Disagg));
        assert_eq!(d.name(), "disagg");
        // Decode replicas mirror llm_executors; prefill is internal.
        assert_eq!(d.n_execs(), 3);
        assert_eq!(total_slots(&*d), 12);
    }

    #[test]
    fn explicit_spec_overrides_scalar_fields() {
        let spec = ClusterSpec::new(
            vec![
                ReplicaGroup::new("fast", 1, 8, LatencyProfile::default()),
                ReplicaGroup::new("slow", 2, 2, LatencyProfile::default()),
            ],
            RoutingPolicy::JoinShortestQueue,
        );
        let c = build_backend(&ClusterConfig {
            spec: Some(spec),
            ..cfg(EngineMode::Cluster)
        });
        assert_eq!(c.n_execs(), 3);
        assert_eq!(c.descriptor(), "cluster/jsq");
        assert_eq!((c.capacity(0), c.capacity(1)), (8, 2));
        assert_eq!(total_slots(&*c), 12);
    }

    #[test]
    fn empty_pool_has_no_placement() {
        let cfg = ClusterConfig {
            llm_executors: 0,
            ..cfg(EngineMode::Analytic)
        };
        let mut be = build_backend(&cfg);
        assert!(!has_free_slot(&*be));
        assert_eq!(
            be.place(
                super::super::LlmTaskRef {
                    job: 0,
                    stage: 0,
                    task: 0
                },
                llmsched_dag::work::LlmWork {
                    prompt_tokens: 0,
                    output_tokens: 1
                }
            ),
            None
        );
        assert!(views(&*be).is_empty());
        assert_eq!(slot_stats(&*be), (0, 0));
    }
}

//! The analytic rate-rescaling backend — the paper's *simulator*.
//!
//! Each running LLM task tracks remaining tokens as a real number.
//! Whenever an executor's batch membership changes (a task is admitted or
//! drained), progress since the last change is settled at the old
//! per-token rate and a fresh finish event is posted for every survivor
//! at the new rate; per-task epochs invalidate the superseded events.
//! Between membership changes the backend is completely idle — no
//! per-iteration events — which is what makes this fidelity fast.

use llmsched_dag::time::{SimDuration, SimTime};
use llmsched_dag::work::LlmWork;

use super::{ExecCtx, ExecutorBackend, LlmTaskRef, StepOutcome};
use crate::latency::LatencyProfile;

/// One running task and its outstanding decode work.
#[derive(Debug, Clone)]
struct Running {
    task: LlmTaskRef,
    remaining_tokens: f64,
}

/// One LLM executor's batch.
#[derive(Debug)]
struct Unit {
    running: Vec<Running>,
    last_settle: SimTime,
    /// Minimum remaining decode tokens across the batch as of
    /// `last_settle` (`f64::INFINITY` when idle), refreshed at every
    /// membership change. Between changes the batch rate is constant and
    /// every request decrements equally, so [`Unit::lookahead`] can
    /// evaluate the exact minimum at any later `now` without settling
    /// (the partitioned engine probes it once per barrier across the
    /// whole pool).
    min_remaining: f64,
    /// Per-token decode seconds at the current batch size, cached with
    /// `min_remaining` (constant between membership changes).
    rate: f64,
}

impl Default for Unit {
    fn default() -> Self {
        Unit {
            running: Vec::new(),
            last_settle: SimTime::ZERO,
            min_remaining: f64::INFINITY,
            rate: 0.0,
        }
    }
}

impl Unit {
    /// Recaches the minimum remaining token count and the current batch
    /// rate from the settled state. Both stay exact until the next
    /// membership change: the rate depends only on the batch size, and
    /// every co-batched request decrements at that same rate, so the
    /// minimum request remains the minimum.
    fn refresh_bound(&mut self, latency: &LatencyProfile) {
        if self.running.is_empty() {
            self.min_remaining = f64::INFINITY;
            self.rate = 0.0;
        } else {
            self.min_remaining = self
                .running
                .iter()
                .map(|r| r.remaining_tokens)
                .fold(f64::INFINITY, f64::min);
            self.rate = latency.per_token(self.running.len()).as_secs_f64();
        }
    }

    /// A lower bound on this unit's earliest possible finish (`u64::MAX`
    /// when idle), evaluated at `now` from the cached
    /// `(min_remaining, rate)` pair without settling — see
    /// [`ReplicaBatch::lookahead`](super::batching) for the full safety
    /// argument (floor conversion plus a one-tick margin under the
    /// `.round()`-posted finish events; advances with `now` so
    /// long-decoding batches keep opening windows).
    fn lookahead(&self, now: SimTime, latency: &LatencyProfile) -> SimTime {
        if self.running.is_empty() {
            return SimTime(u64::MAX);
        }
        let elapsed = (now - self.last_settle).as_secs_f64();
        let min_r = self.min_remaining
            - if elapsed > 0.0 {
                elapsed / self.rate
            } else {
                0.0
            };
        if min_r <= 0.0 {
            return now;
        }
        let b = now + SimDuration((min_r * latency.min_per_token().0 as f64) as u64);
        SimTime(b.0.saturating_sub(1)).max(now)
    }

    /// Settles decode progress since the last membership change at the
    /// current batch rate.
    fn settle(&mut self, now: SimTime, latency: &LatencyProfile) {
        if !self.running.is_empty() {
            let elapsed = (now - self.last_settle).as_secs_f64();
            if elapsed > 0.0 {
                let rate = latency.per_token(self.running.len()).as_secs_f64();
                let done = elapsed / rate;
                for r in &mut self.running {
                    r.remaining_tokens = (r.remaining_tokens - done).max(0.0);
                }
            }
        }
        self.last_settle = now;
    }

    /// Re-posts finish events for every running task at the current batch
    /// rate (stale events are invalidated via task epochs).
    fn retime(&self, cx: &mut ExecCtx<'_>) {
        if self.running.is_empty() {
            return;
        }
        let rate = cx.latency.per_token(self.running.len()).as_secs_f64();
        for r in &self.running {
            let finish = cx.now + SimDuration::from_secs_f64(r.remaining_tokens * rate);
            cx.post_finish(r.task, finish);
        }
    }
}

/// The analytic rate-rescaling executor pool.
#[derive(Debug)]
pub struct AnalyticExec {
    units: Vec<Unit>,
    max_batch: usize,
}

impl AnalyticExec {
    /// A pool of `n_execs` idle executors batching up to `max_batch`.
    pub fn new(n_execs: usize, max_batch: usize) -> Self {
        AnalyticExec {
            units: (0..n_execs).map(|_| Unit::default()).collect(),
            max_batch,
        }
    }
}

impl ExecutorBackend for AnalyticExec {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn n_execs(&self) -> usize {
        self.units.len()
    }

    fn occupancy(&self, exec: usize) -> usize {
        self.units[exec].running.len()
    }

    fn capacity(&self, _exec: usize) -> usize {
        self.max_batch
    }

    fn for_each_slot(&self, f: &mut dyn FnMut(usize, usize)) {
        for u in &self.units {
            f(u.running.len(), self.max_batch);
        }
    }

    fn admit(&mut self, exec: usize, task: LlmTaskRef, work: LlmWork, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        unit.settle(cx.now, cx.latency);
        unit.running.push(Running {
            task,
            remaining_tokens: work.folded_tokens() as f64,
        });
        unit.retime(cx);
        unit.refresh_bound(cx.latency);
        let occupancy = self.units[exec].running.len() as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchAdmit {
            at: cx.now,
            exec: exec as u32,
            occupancy,
            capacity: self.max_batch as u32,
        });
    }

    fn step(&mut self, _exec: usize, _epoch: u64, _cx: &mut ExecCtx<'_>) -> StepOutcome {
        // This backend never posts LlmStep events; any that arrive are
        // stale leftovers from a different backend's queue (impossible in
        // practice, as the engine owns one backend per run).
        StepOutcome::stale()
    }

    fn drain(&mut self, exec: usize, task: LlmTaskRef, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        unit.settle(cx.now, cx.latency);
        unit.running.retain(|r| r.task != task);
        unit.retime(cx);
        unit.refresh_bound(cx.latency);
        let occupancy = self.units[exec].running.len() as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchDrain {
            at: cx.now,
            exec: exec as u32,
            occupancy,
        });
    }

    /// The pool-wide minimum of the per-unit finish lower bounds, each an
    /// O(1) evaluation of the cached `(min_remaining, rate)` pair at
    /// `now` — no per-batch settling (see [`Unit::lookahead`]).
    fn lookahead(&self, now: SimTime, latency: &LatencyProfile) -> SimTime {
        self.units
            .iter()
            .map(|u| u.lookahead(now, latency))
            .min()
            .unwrap_or(SimTime(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::super::pool;
    use super::*;
    use crate::event::{Event, EventQueue};

    fn flat_latency() -> LatencyProfile {
        LatencyProfile::new(vec![(1, SimDuration::from_millis(10))]).unwrap()
    }

    fn t(task: u32) -> LlmTaskRef {
        LlmTaskRef {
            job: 0,
            stage: 0,
            task,
        }
    }

    fn w(tokens: u64) -> LlmWork {
        LlmWork {
            prompt_tokens: 0,
            output_tokens: tokens,
        }
    }

    #[test]
    fn admit_posts_one_finish_event_per_running_task() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(4)];
        let mut be = AnalyticExec::new(1, 8);

        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.occupancy(0), 1);
        assert_eq!(queue.len(), 1, "one finish event for the lone task");

        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(1), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.occupancy(0), 2);
        // Both tasks were re-timed: two new events on top of the stale one.
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn drain_releases_slot_and_retimes_survivors() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(4)];
        let mut be = AnalyticExec::new(2, 8);

        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(100), &mut cx);
        be.admit(0, t(1), w(200), &mut cx);
        be.drain(0, t(0), &mut cx);
        assert_eq!(be.occupancy(0), 1);
        assert_eq!(be.occupancy(1), 0, "other executors untouched");
        // Draining an already-absent task is a no-op on occupancy.
        be.drain(0, t(0), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.occupancy(0), 1);
    }

    #[test]
    fn only_latest_epoch_finish_event_is_valid() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(1)];
        let mut be = AnalyticExec::new(1, 8);

        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::from_secs_f64(0.5),
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        // A no-op membership change (drain of an absent task) still
        // re-times: the old event goes stale.
        be.drain(
            0,
            LlmTaskRef {
                job: 0,
                stage: 0,
                task: 99,
            },
            &mut cx,
        );
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let current_epoch = jobs[0].task_epoch_of(0, 0);
        let mut valid = 0;
        while let Some((_, ev)) = queue.pop() {
            if let Event::TaskFinish { epoch, .. } = ev {
                valid += u32::from(epoch == current_epoch);
            }
        }
        assert_eq!(valid, 1, "exactly one live finish event per running task");
    }

    #[test]
    fn settles_progress_before_rescaling() {
        // l(1)=10ms, l(2)=20ms. Task A (100 tokens) runs alone for 0.5s
        // (50 tokens done), then B joins: A's remaining 50 tokens at
        // 20ms/token => finish at 0.5 + 1.0 = 1.5s.
        let latency = LatencyProfile::new(vec![
            (1, SimDuration::from_millis(10)),
            (2, SimDuration::from_millis(20)),
        ])
        .unwrap();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = AnalyticExec::new(1, 8);

        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::from_secs_f64(0.5),
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(1), w(100), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let epoch_a = jobs[0].task_epoch_of(0, 0);
        let mut finish_a = None;
        while let Some((time, ev)) = queue.pop() {
            if let Event::TaskFinish { task: 0, epoch, .. } = ev {
                if epoch == epoch_a {
                    finish_a = Some(time);
                }
            }
        }
        let finish_a = finish_a.expect("task 0 has a live finish event");
        assert!(
            (finish_a.as_secs_f64() - 1.5).abs() < 1e-9,
            "expected 1.5s, got {finish_a}"
        );
    }

    #[test]
    fn pool_views_report_occupancy() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(4)];
        let mut be = AnalyticExec::new(2, 8);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(1, t(0), w(10), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let views = pool::views(&be);
        assert_eq!(views.len(), 2);
        assert_eq!((views[0].batch_len, views[1].batch_len), (0, 1));
        assert_eq!((views[0].max_batch, views[1].max_batch), (8, 8));
        assert_eq!(be.place(t(1), w(10)), Some(0));
    }
}

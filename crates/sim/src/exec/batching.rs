//! Shared per-replica batch state for the cluster-shaped backends.
//!
//! [`ClusterExec`](super::ClusterExec) and [`DisaggExec`](super::DisaggExec)
//! both decode under the analytic rate-rescaling model, each replica
//! against its *own* group's latency curve. That subtle settle/retime
//! logic lives here exactly once; the backends differ only in how
//! requests reach the batch (directly vs. via prefill transit).

use llmsched_cluster::{ClusterSpec, LatencyProfile, ReplicaView};
use llmsched_dag::time::{SimDuration, SimTime};

use super::{ExecCtx, LlmTaskRef};

/// One running task and its outstanding decode work.
#[derive(Debug, Clone)]
struct Running {
    task: LlmTaskRef,
    remaining_tokens: f64,
    /// Tokens charged to the replica's queue at admission, released at
    /// drain (keeps JSQ accounting exact under f64 progress rounding).
    admitted_tokens: u64,
}

/// One replica's decode batch under analytic rate-rescaling, plus its
/// group-derived parameters.
#[derive(Debug)]
pub(super) struct ReplicaBatch {
    /// Replica-group index in the originating [`ClusterSpec`].
    pub(super) group: usize,
    /// Maximum co-batched requests.
    pub(super) capacity: usize,
    latency: LatencyProfile,
    running: Vec<Running>,
    /// Decode tokens admitted to the batch and not yet drained.
    pub(super) pending_tokens: u64,
    last_settle: SimTime,
}

impl ReplicaBatch {
    /// The flat serving-replica table of `spec`, one batch per replica.
    pub(super) fn table(spec: &ClusterSpec) -> Vec<ReplicaBatch> {
        spec.serving_replicas()
            .into_iter()
            .map(|(group, g)| ReplicaBatch {
                group,
                capacity: g.max_batch,
                latency: g.latency.clone(),
                running: Vec::new(),
                pending_tokens: 0,
                last_settle: SimTime::ZERO,
            })
            .collect()
    }

    /// Number of co-batched running requests.
    pub(super) fn len(&self) -> usize {
        self.running.len()
    }

    /// Settles decode progress since the last membership change at the
    /// replica's current batch rate.
    pub(super) fn settle(&mut self, now: SimTime) {
        if !self.running.is_empty() {
            let elapsed = (now - self.last_settle).as_secs_f64();
            if elapsed > 0.0 {
                let rate = self.latency.per_token(self.running.len()).as_secs_f64();
                let done = elapsed / rate;
                for r in &mut self.running {
                    r.remaining_tokens = (r.remaining_tokens - done).max(0.0);
                }
            }
        }
        self.last_settle = now;
    }

    /// Re-posts finish events for every running task at the replica's
    /// current batch rate (stale events are invalidated via task epochs).
    pub(super) fn retime(&self, cx: &mut ExecCtx<'_>) {
        if self.running.is_empty() {
            return;
        }
        let rate = self.latency.per_token(self.running.len()).as_secs_f64();
        for r in &self.running {
            let finish = cx.now + SimDuration::from_secs_f64(r.remaining_tokens * rate);
            cx.post_finish(r.task, finish);
        }
    }

    /// Adds `task` with `tokens` to decode. Callers settle before and
    /// retime after (possibly batching several joins into one retime).
    pub(super) fn join(&mut self, task: LlmTaskRef, tokens: u64) {
        self.running.push(Running {
            task,
            remaining_tokens: tokens as f64,
            admitted_tokens: tokens,
        });
        self.pending_tokens += tokens;
    }

    /// Removes `task` if present, releasing its queue tokens; returns
    /// whether it was running.
    pub(super) fn drain(&mut self, task: LlmTaskRef) -> bool {
        if let Some(i) = self.running.iter().position(|r| r.task == task) {
            let removed = self.running.remove(i);
            self.pending_tokens -= removed.admitted_tokens;
            true
        } else {
            false
        }
    }

    /// The router-visible view of this replica. `staged` /
    /// `staged_tokens` account for requests holding a slot without
    /// decoding yet (the disaggregated backend's prefill transit).
    pub(super) fn view(&self, index: usize, staged: usize, staged_tokens: u64) -> ReplicaView {
        ReplicaView {
            index,
            group: self.group,
            occupancy: self.running.len() + staged,
            capacity: self.capacity,
            pending_tokens: self.pending_tokens + staged_tokens,
        }
    }
}

//! Shared per-replica batch state for the cluster-shaped backends.
//!
//! [`ClusterExec`](super::ClusterExec) and [`DisaggExec`](super::DisaggExec)
//! both decode under the analytic rate-rescaling model, each replica
//! against its *own* group's latency curve. That subtle settle/retime
//! logic lives here exactly once; the backends differ only in how
//! requests reach the batch (directly vs. via prefill transit).

use llmsched_cluster::{ClusterSpec, LatencyProfile, ReplicaView};
use llmsched_dag::time::{SimDuration, SimTime};

use super::{ExecCtx, LlmTaskRef};

/// One running task and its outstanding decode work.
#[derive(Debug, Clone)]
struct Running {
    task: LlmTaskRef,
    remaining_tokens: f64,
    /// Tokens charged to the replica's queue at admission, released at
    /// drain (keeps JSQ accounting exact under f64 progress rounding).
    admitted_tokens: u64,
}

/// One replica's decode batch under analytic rate-rescaling, plus its
/// group-derived parameters.
#[derive(Debug)]
pub(super) struct ReplicaBatch {
    /// Replica-group index in the originating [`ClusterSpec`].
    pub(super) group: usize,
    /// Maximum co-batched requests.
    pub(super) capacity: usize,
    latency: LatencyProfile,
    running: Vec<Running>,
    /// Decode tokens admitted to the batch and not yet drained.
    pub(super) pending_tokens: u64,
    last_settle: SimTime,
    /// Minimum remaining decode tokens across the batch as of
    /// `last_settle` (`f64::INFINITY` when idle), refreshed at every
    /// settle and membership change. Between mutations the batch rate is
    /// constant and every request decrements equally, so
    /// [`ReplicaBatch::lookahead`] can evaluate the exact minimum at any
    /// later `now` without re-settling (the partitioned engine probes it
    /// once per barrier across every replica).
    min_remaining: f64,
    /// Per-token decode seconds at the current batch size, cached with
    /// `min_remaining` (constant between membership changes).
    rate: f64,
}

impl ReplicaBatch {
    /// The flat serving-replica table of `spec`, one batch per replica.
    pub(super) fn table(spec: &ClusterSpec) -> Vec<ReplicaBatch> {
        spec.serving_replicas()
            .into_iter()
            .map(|(group, g)| ReplicaBatch {
                group,
                capacity: g.max_batch,
                latency: g.latency.clone(),
                running: Vec::new(),
                pending_tokens: 0,
                last_settle: SimTime::ZERO,
                min_remaining: f64::INFINITY,
                rate: 0.0,
            })
            .collect()
    }

    /// Number of co-batched running requests.
    pub(super) fn len(&self) -> usize {
        self.running.len()
    }

    /// Settles decode progress since the last membership change at the
    /// replica's current batch rate.
    pub(super) fn settle(&mut self, now: SimTime) {
        if !self.running.is_empty() {
            let elapsed = (now - self.last_settle).as_secs_f64();
            if elapsed > 0.0 {
                let rate = self.latency.per_token(self.running.len()).as_secs_f64();
                let done = elapsed / rate;
                for r in &mut self.running {
                    r.remaining_tokens = (r.remaining_tokens - done).max(0.0);
                }
            }
        }
        self.last_settle = now;
        self.refresh_bound();
    }

    /// Recaches the minimum remaining token count and the current batch
    /// rate from the settled state. Both stay exact until the next
    /// membership change: the rate depends only on the batch size, and
    /// every co-batched request decrements at that same rate, so the
    /// minimum request remains the minimum.
    fn refresh_bound(&mut self) {
        if self.running.is_empty() {
            self.min_remaining = f64::INFINITY;
            self.rate = 0.0;
        } else {
            self.min_remaining = self
                .running
                .iter()
                .map(|r| r.remaining_tokens)
                .fold(f64::INFINITY, f64::min);
            self.rate = self.latency.per_token(self.running.len()).as_secs_f64();
        }
    }

    /// Re-posts finish events for every running task at the replica's
    /// current batch rate (stale events are invalidated via task epochs).
    pub(super) fn retime(&self, cx: &mut ExecCtx<'_>) {
        if self.running.is_empty() {
            return;
        }
        let rate = self.latency.per_token(self.running.len()).as_secs_f64();
        for r in &self.running {
            let finish = cx.now + SimDuration::from_secs_f64(r.remaining_tokens * rate);
            cx.post_finish(r.task, finish);
        }
    }

    /// The group curve's global per-token lower bound.
    pub(super) fn min_per_token(&self) -> SimDuration {
        self.latency.min_per_token()
    }

    /// Conservative lookahead: a lower bound on this replica's earliest
    /// possible finish (`u64::MAX` when idle), evaluated at `now` from
    /// the cached `(min_remaining, rate)` pair without settling.
    ///
    /// Between mutations the batch decodes at the constant cached rate,
    /// so the minimum remaining count at `now` is exactly
    /// `min_remaining - elapsed / rate`; no request can then finish
    /// before clearing that many tokens at the curve-wide minimum
    /// per-token latency. Floor tick conversion plus a one-tick safety
    /// margin keep the bound strictly below the `.round()`-posted finish
    /// events even under f64 rounding of the division. Unlike a bound
    /// anchored at the last settle, this one advances with `now`, so
    /// long-decoding batches keep opening windows instead of going
    /// vacuous once `now` passes the anchor-time bound.
    pub(super) fn lookahead(&self, now: SimTime) -> SimTime {
        if self.running.is_empty() {
            return SimTime(u64::MAX);
        }
        let elapsed = (now - self.last_settle).as_secs_f64();
        let min_r = self.min_remaining
            - if elapsed > 0.0 {
                elapsed / self.rate
            } else {
                0.0
            };
        if min_r <= 0.0 {
            return now;
        }
        let b = now + SimDuration((min_r * self.min_per_token().0 as f64) as u64);
        SimTime(b.0.saturating_sub(1)).max(now)
    }

    /// Adds `task` with `tokens` to decode. Callers settle before and
    /// retime after (possibly batching several joins into one retime).
    pub(super) fn join(&mut self, task: LlmTaskRef, tokens: u64) {
        self.running.push(Running {
            task,
            remaining_tokens: tokens as f64,
            admitted_tokens: tokens,
        });
        self.pending_tokens += tokens;
        self.refresh_bound();
    }

    /// Removes `task` if present, releasing its queue tokens; returns
    /// whether it was running.
    pub(super) fn drain(&mut self, task: LlmTaskRef) -> bool {
        if let Some(i) = self.running.iter().position(|r| r.task == task) {
            let removed = self.running.remove(i);
            self.pending_tokens -= removed.admitted_tokens;
            self.refresh_bound();
            true
        } else {
            false
        }
    }

    /// The router-visible view of this replica. `staged` /
    /// `staged_tokens` account for requests holding a slot without
    /// decoding yet (the disaggregated backend's prefill transit).
    pub(super) fn view(&self, index: usize, staged: usize, staged_tokens: u64) -> ReplicaView {
        ReplicaView {
            index,
            group: self.group,
            occupancy: self.running.len() + staged,
            capacity: self.capacity,
            pending_tokens: self.pending_tokens + staged_tokens,
        }
    }
}

//! The token-level continuous-batching backend — the paper's *testbed*
//! stand-in.
//!
//! Executors step per decode iteration: requests join at iteration
//! boundaries (vLLM-style continuous batching), every iteration costs
//! `l(batch)` wall-clock and emits `chunk` tokens per request. `chunk = 1`
//! is faithful per-token stepping; larger chunks trade fidelity for event
//! throughput. The iteration loop is driven by
//! [`Event::LlmStep`](crate::event::Event::LlmStep) wake-ups the backend
//! posts for itself, versioned by a per-executor epoch so a batch that
//! drains and restarts invalidates leftover wake-ups.

use llmsched_dag::time::SimTime;
use llmsched_dag::work::LlmWork;

use super::{ExecCtx, ExecutorBackend, LlmTaskRef, StepOutcome};
use crate::latency::LatencyProfile;

/// One task waiting on decode iterations.
#[derive(Debug, Clone)]
struct Pending {
    task: LlmTaskRef,
    remaining_tokens: u64,
}

/// One LLM executor's iteration state.
#[derive(Debug, Default)]
struct Unit {
    /// Tasks decoding in the current iteration.
    running: Vec<Pending>,
    /// Tasks admitted mid-iteration; they join at the next boundary.
    joining: Vec<Pending>,
    /// Wake-up epoch; LlmStep events from older epochs are stale.
    epoch: u64,
    /// Whether an iteration is in flight.
    iterating: bool,
}

impl Unit {
    fn occupancy(&self) -> usize {
        self.running.len() + self.joining.len()
    }
}

/// The token-level continuous-batching executor pool.
#[derive(Debug)]
pub struct TokenExec {
    units: Vec<Unit>,
    max_batch: usize,
    chunk: u64,
}

impl TokenExec {
    /// A pool of `n_execs` idle executors batching up to `max_batch` and
    /// decoding `chunk` tokens per iteration event (`chunk` is clamped to
    /// at least 1).
    pub fn new(n_execs: usize, max_batch: usize, chunk: u64) -> Self {
        TokenExec {
            units: (0..n_execs).map(|_| Unit::default()).collect(),
            max_batch,
            chunk: chunk.max(1),
        }
    }

    /// Tokens decoded per iteration event.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// Starts the next iteration on `exec`: bumps the epoch and posts the
    /// boundary wake-up `l(batch) × chunk` ahead.
    fn start_iteration(&mut self, exec: usize, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        debug_assert!(!unit.running.is_empty());
        unit.iterating = true;
        unit.epoch += 1;
        let dur = cx
            .latency
            .per_token(unit.running.len())
            .mul_f64(self.chunk as f64);
        cx.post_step(exec, unit.epoch, cx.now + dur);
    }
}

impl ExecutorBackend for TokenExec {
    fn name(&self) -> &'static str {
        "token-level"
    }

    fn n_execs(&self) -> usize {
        self.units.len()
    }

    fn occupancy(&self, exec: usize) -> usize {
        self.units[exec].occupancy()
    }

    fn capacity(&self, _exec: usize) -> usize {
        self.max_batch
    }

    fn for_each_slot(&self, f: &mut dyn FnMut(usize, usize)) {
        for u in &self.units {
            f(u.occupancy(), self.max_batch);
        }
    }

    fn admit(&mut self, exec: usize, task: LlmTaskRef, work: LlmWork, cx: &mut ExecCtx<'_>) {
        let unit = &mut self.units[exec];
        unit.joining.push(Pending {
            task,
            remaining_tokens: work.folded_tokens(),
        });
        if !unit.iterating {
            // Idle executor: the joiners form a fresh batch immediately.
            let mut joining = std::mem::take(&mut unit.joining);
            unit.running.append(&mut joining);
            self.start_iteration(exec, cx);
        }
        let occupancy = self.units[exec].occupancy() as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchAdmit {
            at: cx.now,
            exec: exec as u32,
            occupancy,
            capacity: self.max_batch as u32,
        });
    }

    fn step(&mut self, exec: usize, epoch: u64, cx: &mut ExecCtx<'_>) -> StepOutcome {
        let unit = &mut self.units[exec];
        if !unit.iterating || unit.epoch != epoch {
            return StepOutcome::stale();
        }
        let mut finished: Vec<LlmTaskRef> = Vec::new();
        for r in &mut unit.running {
            r.remaining_tokens = r.remaining_tokens.saturating_sub(self.chunk);
        }
        unit.running.retain_mut(|r| {
            if r.remaining_tokens == 0 {
                finished.push(r.task);
                false
            } else {
                true
            }
        });
        unit.running.append(&mut unit.joining);
        if unit.running.is_empty() {
            unit.iterating = false;
        } else {
            self.start_iteration(exec, cx);
        }
        // An iteration with no finishes only shuffled batch composition;
        // scheduling on it would be harmless but noisy, so effectiveness
        // is reported only when a task completed.
        StepOutcome {
            effective: !finished.is_empty(),
            finished,
        }
    }

    fn drain(&mut self, exec: usize, task: LlmTaskRef, cx: &mut ExecCtx<'_>) {
        // Finished tasks were already removed by the step that completed
        // them; this only covers defensive removal of a task the engine
        // finishes through some other path.
        let unit = &mut self.units[exec];
        unit.running.retain(|r| r.task != task);
        unit.joining.retain(|r| r.task != task);
        let occupancy = self.units[exec].occupancy() as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchDrain {
            at: cx.now,
            exec: exec as u32,
            occupancy,
        });
    }

    /// A task finishes only at an iteration boundary, boundaries are at
    /// least `min_per_token × chunk` apart, and a running task with `r`
    /// tokens left needs `ceil(r / chunk)` more boundaries — the first of
    /// which is the already-posted wake-up whose time this backend does
    /// not retain, hence the `- 1` (a task finishing at the very next
    /// boundary yields a vacuous `now` bound). Joiners only start
    /// decoding *after* that pending boundary, so they keep the full
    /// iteration count. All integer math: exact.
    fn lookahead(&self, now: SimTime, latency: &LatencyProfile) -> SimTime {
        let gap = latency.min_service_time(self.chunk);
        let mut bound = SimTime(u64::MAX);
        for unit in &self.units {
            if unit.occupancy() == 0 {
                continue;
            }
            debug_assert!(unit.iterating, "non-empty unit always iterates");
            let min_iters = unit
                .running
                .iter()
                .map(|r| r.remaining_tokens.div_ceil(self.chunk).saturating_sub(1))
                .chain(
                    unit.joining
                        .iter()
                        .map(|r| r.remaining_tokens.div_ceil(self.chunk)),
                )
                .min()
                .unwrap_or(0);
            bound = bound.min(now + gap * min_iters);
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventQueue};
    use crate::latency::LatencyProfile;
    use llmsched_dag::time::{SimDuration, SimTime};

    fn flat_latency() -> LatencyProfile {
        LatencyProfile::new(vec![(1, SimDuration::from_millis(10))]).unwrap()
    }

    fn t(task: u32) -> LlmTaskRef {
        LlmTaskRef {
            job: 0,
            stage: 0,
            task,
        }
    }

    fn w(tokens: u64) -> LlmWork {
        LlmWork {
            prompt_tokens: 0,
            output_tokens: tokens,
        }
    }

    /// Pops the single pending LlmStep event.
    fn pop_step(queue: &mut EventQueue) -> (SimTime, usize, u64) {
        let (time, ev) = queue.pop().expect("a step event is pending");
        match ev {
            Event::LlmStep { exec, epoch } => (time, exec, epoch),
            other => panic!("expected LlmStep, got {other:?}"),
        }
    }

    #[test]
    fn admit_on_idle_executor_starts_iteration() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = TokenExec::new(1, 8, 1);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(3), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(be.occupancy(0), 1);
        let (time, exec, _) = pop_step(&mut queue);
        assert_eq!(exec, 0);
        assert!(
            (time.as_secs_f64() - 0.01).abs() < 1e-9,
            "one l(1) iteration ahead"
        );
    }

    #[test]
    fn joiners_wait_for_iteration_boundary() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = TokenExec::new(1, 8, 1);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(2), &mut cx);
        be.admit(0, t(1), w(2), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        // Occupancy counts the joiner immediately (slot accounting)...
        assert_eq!(be.occupancy(0), 2);
        // ...but only one wake-up is in flight: the joiner did not restart
        // or reschedule the running iteration.
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn stale_epoch_steps_are_discarded() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(2)];
        let mut be = TokenExec::new(1, 8, 1);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(1), &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let (_, _, epoch) = pop_step(&mut queue);
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        let out = be.step(0, epoch + 1, &mut cx);
        assert!(!out.effective);
        assert!(out.finished.is_empty());
        // The real epoch still works and finishes the 1-token task.
        let out = be.step(0, epoch, &mut cx);
        assert!(out.effective);
        assert_eq!(out.finished, vec![t(0)]);
        assert_eq!(be.occupancy(0), 0);
    }

    #[test]
    fn step_finishes_tasks_and_admits_joiners() {
        let latency = flat_latency();
        let mut queue = EventQueue::new();
        let mut jobs = [crate::state::test_support::job_with_llm_tasks(3)];
        let mut be = TokenExec::new(1, 8, 1);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(1), &mut cx); // finishes after one iteration
        be.admit(0, t(1), w(5), &mut cx); // joins at the boundary
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let (time, _, epoch) = pop_step(&mut queue);
        let mut cx = ExecCtx {
            now: time,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        let out = be.step(0, epoch, &mut cx);
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        assert_eq!(out.finished, vec![t(0)]);
        assert!(out.effective);
        // The joiner is now running and a new iteration is in flight.
        assert_eq!(be.occupancy(0), 1);
        assert_eq!(queue.len(), 1);
        // Drain of the finished task is a no-op (already removed by step).
        crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
        let mut cx = ExecCtx {
            now: time,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.drain(0, t(0), &mut cx);
        assert_eq!(be.occupancy(0), 1);
    }

    #[test]
    fn chunking_divides_iteration_count() {
        let latency = flat_latency();
        for (chunk, expected_steps) in [(1u64, 8usize), (4, 2), (16, 1)] {
            let mut queue = EventQueue::new();
            let mut jobs = [crate::state::test_support::job_with_llm_tasks(1)];
            let mut be = TokenExec::new(1, 8, chunk);
            let mut posts = Vec::new();
            let mut cx = ExecCtx {
                now: SimTime::ZERO,
                latency: &latency,
                posts: &mut posts,
                probe: None,
            };
            be.admit(0, t(0), w(8), &mut cx);
            crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
            let mut steps = 0;
            while !queue.is_empty() {
                let (time, _, epoch) = pop_step(&mut queue);
                let mut cx = ExecCtx {
                    now: time,
                    latency: &latency,
                    posts: &mut posts,
                    probe: None,
                };
                be.step(0, epoch, &mut cx);
                crate::exec::flush_posts(&mut posts, &mut jobs, &mut queue);
                steps += 1;
            }
            assert_eq!(steps, expected_steps, "chunk {chunk}");
            assert_eq!(be.occupancy(0), 0);
        }
    }

    #[test]
    fn least_loaded_balances_across_executors() {
        let latency = flat_latency();
        let mut be = TokenExec::new(2, 2, 1);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &latency,
            posts: &mut posts,
            probe: None,
        };
        be.admit(0, t(0), w(5), &mut cx);
        assert_eq!(be.place(t(1), w(5)), Some(1));
        be.admit(1, t(1), w(5), &mut cx);
        be.admit(0, t(2), w(5), &mut cx);
        be.admit(1, t(3), w(5), &mut cx);
        assert_eq!(be.place(t(4), w(5)), None, "both executors full");
    }
}

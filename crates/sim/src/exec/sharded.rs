//! The partitioned executor backend: disjoint shards of a monolithic
//! pool, stepped concurrently between scheduler barriers.
//!
//! [`ShardedBackend`] wraps `p` independent backend shards, each owning
//! a contiguous slice of the global executor index space. Called through
//! the ordinary [`ExecutorBackend`] trait it behaves *bit-identically*
//! to the monolithic backend it partitions:
//!
//! * per-executor hooks (`admit`/`step`/`drain`/`occupancy`/`capacity`)
//!   delegate to the owning shard with the local index `e - base[s]`,
//!   remapping any `Post::Step` the shard emits back to global indices;
//! * `place` is *global*: homogeneous pools re-run the paper's
//!   least-loaded rule over all executors, routed pools compose the
//!   global [`ReplicaView`] table from per-shard views and consult ONE
//!   global router (so stateful policies like session affinity see the
//!   same call sequence as the monolithic backend);
//! * disaggregated pools keep ONE global [`PrefillPool`] — prefill FIFO
//!   order is a cross-shard resource — and admit into shards with the
//!   arrival time pre-resolved.
//!
//! What the partitioning buys is [`run_shard`]: the engine hands each
//! shard its slice of a same-timestamp event batch and the shards run
//! their hook work on scoped worker threads, sharing the job table
//! read-only. Validity of a `TaskFinish` against a *moving* epoch is
//! decided with a per-shard epoch shadow (all epoch bumps for a task
//! come from its own executor's shard, so the shadow is exact), and all
//! effects are returned as [`HookFx`] records the engine replays on the
//! main thread in exact `(time, seq)` batch order.

use std::collections::{HashMap, HashSet};

use llmsched_cluster::{ClusterSpec, ReplicaView, RouteRequest, Router};
use llmsched_dag::time::SimTime;
use llmsched_dag::work::LlmWork;

use super::batching::ReplicaBatch;
use super::disagg::PrefillPool;
use super::pool::EngineMode;
use super::{
    AnalyticExec, ClusterExec, DisaggExec, ExecCtx, ExecutorBackend, LlmTaskRef, Post, StepOutcome,
    TokenExec,
};
use crate::engine::ClusterConfig;
use crate::event::Event;
use crate::latency::LatencyProfile;
use crate::state::{JobRt, TaskState};

/// The per-mode shard storage.
#[derive(Debug)]
enum ShardKind {
    Analytic(Vec<AnalyticExec>),
    Token(Vec<TokenExec>),
    Cluster(Vec<ClusterExec>),
    Disagg {
        shards: Vec<DisaggExec>,
        /// The global FIFO prefill pool (admission order is cross-shard).
        prefill: PrefillPool,
    },
}

/// A monolithic-equivalent backend partitioned into disjoint shards.
#[derive(Debug)]
pub(crate) struct ShardedBackend {
    kind: ShardKind,
    /// Global router for routed pools (`None` for homogeneous pools,
    /// which use the paper's least-loaded rule globally).
    router: Option<Box<dyn Router>>,
    /// First global executor index of each shard (contiguous layout).
    base: Vec<usize>,
    /// Global executor index → owning shard.
    shard_of: Vec<usize>,
    name: &'static str,
    desc: String,
    /// Reused global router-view buffer.
    view_scratch: Vec<ReplicaView>,
}

/// `n` executors split into `p` contiguous chunks, sizes differing by at
/// most one (shard `i` gets `n/p + (i < n%p)`).
fn chunk_sizes(n: usize, p: usize) -> Vec<usize> {
    (0..p).map(|i| n / p + usize::from(i < n % p)).collect()
}

/// Splits a flat replica-batch table into contiguous per-shard chunks.
fn chunk_units(mut units: Vec<ReplicaBatch>, sizes: &[usize]) -> Vec<Vec<ReplicaBatch>> {
    let mut out = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let rest = units.split_off(s);
        out.push(units);
        units = rest;
    }
    debug_assert!(units.is_empty());
    out
}

impl ShardedBackend {
    /// Partitions the backend `cfg` describes into `parts` shards. The
    /// spec-derivation rules mirror [`super::pool::build_backend`]
    /// exactly, so the partitioned pool models the same cluster.
    pub(crate) fn build(cfg: &ClusterConfig, parts: usize) -> Self {
        debug_assert!(parts >= 2, "one shard is the sequential path");
        match cfg.mode {
            EngineMode::Analytic => {
                let sizes = chunk_sizes(cfg.llm_executors, parts);
                let shards = sizes
                    .iter()
                    .map(|&n| AnalyticExec::new(n, cfg.max_batch))
                    .collect();
                Self::assemble(
                    ShardKind::Analytic(shards),
                    None,
                    &sizes,
                    "analytic",
                    format!("analytic+p{parts}"),
                )
            }
            EngineMode::TokenLevel => {
                let sizes = chunk_sizes(cfg.llm_executors, parts);
                let shards = sizes
                    .iter()
                    .map(|&n| TokenExec::new(n, cfg.max_batch, cfg.iteration_chunk))
                    .collect();
                Self::assemble(
                    ShardKind::Token(shards),
                    None,
                    &sizes,
                    "token-level",
                    format!("token-level+p{parts}"),
                )
            }
            EngineMode::Cluster => {
                let spec = cfg.spec.clone().unwrap_or_else(|| {
                    ClusterSpec::homogeneous(cfg.llm_executors, cfg.max_batch, cfg.latency.clone())
                });
                spec.validate().expect("invalid cluster spec");
                let units = ReplicaBatch::table(&spec);
                let sizes = chunk_sizes(units.len(), parts);
                let shards = chunk_units(units, &sizes)
                    .into_iter()
                    .map(|chunk| ClusterExec::from_units(chunk, spec.routing.build()))
                    .collect();
                let router = spec.routing.build();
                let desc = format!("cluster/{}+p{parts}", router.name());
                Self::assemble(
                    ShardKind::Cluster(shards),
                    Some(router),
                    &sizes,
                    "cluster",
                    desc,
                )
            }
            EngineMode::Disagg => {
                let spec = cfg.spec.clone().unwrap_or_else(|| {
                    ClusterSpec::disaggregated(
                        cfg.llm_executors,
                        cfg.max_batch,
                        cfg.latency.clone(),
                    )
                });
                spec.validate().expect("invalid cluster spec");
                let prefill = PrefillPool::from_spec(&spec);
                let units = ReplicaBatch::table(&spec);
                let sizes = chunk_sizes(units.len(), parts);
                let shards = chunk_units(units, &sizes)
                    .into_iter()
                    .map(|chunk| DisaggExec::from_units(chunk, spec.routing.build()))
                    .collect();
                let router = spec.routing.build();
                let desc = format!("disagg/{}+p{parts}", router.name());
                Self::assemble(
                    ShardKind::Disagg { shards, prefill },
                    Some(router),
                    &sizes,
                    "disagg",
                    desc,
                )
            }
        }
    }

    fn assemble(
        kind: ShardKind,
        router: Option<Box<dyn Router>>,
        sizes: &[usize],
        name: &'static str,
        desc: String,
    ) -> Self {
        let mut base = Vec::with_capacity(sizes.len());
        let mut shard_of = Vec::new();
        let mut next = 0usize;
        for (s, &n) in sizes.iter().enumerate() {
            base.push(next);
            shard_of.extend(std::iter::repeat(s).take(n));
            next += n;
        }
        ShardedBackend {
            kind,
            router,
            base,
            shard_of,
            name,
            desc,
            view_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    #[cfg(test)]
    pub(crate) fn partitions(&self) -> usize {
        self.base.len()
    }

    /// Owning shard of global executor `exec`.
    pub(crate) fn shard_of(&self, exec: usize) -> usize {
        self.shard_of[exec]
    }

    /// First global executor index of each shard.
    pub(crate) fn bases(&self) -> &[usize] {
        &self.base
    }

    /// The shards as trait objects, for scoped worker threads.
    pub(crate) fn shards_dyn_mut(&mut self) -> Vec<&mut dyn ExecutorBackend> {
        match &mut self.kind {
            ShardKind::Analytic(v) => v
                .iter_mut()
                .map(|s| s as &mut dyn ExecutorBackend)
                .collect(),
            ShardKind::Token(v) => v
                .iter_mut()
                .map(|s| s as &mut dyn ExecutorBackend)
                .collect(),
            ShardKind::Cluster(v) => v
                .iter_mut()
                .map(|s| s as &mut dyn ExecutorBackend)
                .collect(),
            ShardKind::Disagg { shards, .. } => shards
                .iter_mut()
                .map(|s| s as &mut dyn ExecutorBackend)
                .collect(),
        }
    }

    fn shard_ref(&self, s: usize) -> &dyn ExecutorBackend {
        match &self.kind {
            ShardKind::Analytic(v) => &v[s],
            ShardKind::Token(v) => &v[s],
            ShardKind::Cluster(v) => &v[s],
            ShardKind::Disagg { shards, .. } => &shards[s],
        }
    }
}

/// Remaps shard-local `Post::Step` executor indices to global ones.
/// Must run on every post slice a shard hook produced before the posts
/// reach the event queue.
fn remap_steps(posts: &mut [Post], base: usize) {
    for p in posts {
        if let Post::Step { exec, .. } = p {
            *exec += base;
        }
    }
}

impl ExecutorBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn descriptor(&self) -> String {
        self.desc.clone()
    }

    fn n_execs(&self) -> usize {
        self.shard_of.len()
    }

    fn occupancy(&self, exec: usize) -> usize {
        let s = self.shard_of[exec];
        self.shard_ref(s).occupancy(exec - self.base[s])
    }

    fn capacity(&self, exec: usize) -> usize {
        let s = self.shard_of[exec];
        self.shard_ref(s).capacity(exec - self.base[s])
    }

    /// Walks each shard's pool directly — shard-contiguous chunks cover
    /// the global index space in order, so no per-executor shard/base
    /// translation is needed. The engine probes this once per timestamp
    /// (utilization integrals) and once per scheduler invocation
    /// (occupancy views); the translating per-executor accessors made
    /// those scans the largest fixed overhead of the partitioned path.
    fn for_each_slot(&self, f: &mut dyn FnMut(usize, usize)) {
        match &self.kind {
            ShardKind::Analytic(v) => v.iter().for_each(|s| s.for_each_slot(&mut *f)),
            ShardKind::Token(v) => v.iter().for_each(|s| s.for_each_slot(&mut *f)),
            ShardKind::Cluster(v) => v.iter().for_each(|s| s.for_each_slot(&mut *f)),
            ShardKind::Disagg { shards, .. } => {
                shards.iter().for_each(|s| s.for_each_slot(&mut *f))
            }
        }
    }

    fn place(&mut self, task: LlmTaskRef, work: LlmWork) -> Option<usize> {
        match &self.kind {
            // Homogeneous pools: the paper's least-loaded rule over the
            // global index space (identical to the trait default the
            // monolithic backends use — first minimum in index order —
            // but walking each shard's pool directly instead of
            // translating every global index).
            ShardKind::Analytic(_) | ShardKind::Token(_) => {
                let mut best: Option<(usize, usize)> = None;
                let mut e = 0usize;
                self.for_each_slot(&mut |occ, cap| {
                    if occ < cap && best.map_or(true, |(b, _)| occ < b) {
                        best = Some((occ, e));
                    }
                    e += 1;
                });
                best.map(|(_, e)| e)
            }
            // Routed pools: compose the global view table and ask the
            // single global router, exactly like the monolithic backend.
            _ => {
                let ShardedBackend {
                    kind,
                    router,
                    base,
                    view_scratch,
                    ..
                } = self;
                let mut views = std::mem::take(view_scratch);
                views.clear();
                let tokens = match kind {
                    ShardKind::Cluster(shards) => {
                        for (s, shard) in shards.iter().enumerate() {
                            for l in 0..shard.n_execs() {
                                views.push(shard.unit_view(l, base[s] + l));
                            }
                        }
                        work.folded_tokens()
                    }
                    ShardKind::Disagg { shards, .. } => {
                        for (s, shard) in shards.iter().enumerate() {
                            for l in 0..shard.n_execs() {
                                views.push(shard.unit_view(l, base[s] + l));
                            }
                        }
                        work.decode_tokens()
                    }
                    _ => unreachable!("homogeneous pools handled above"),
                };
                let chosen = router.as_mut().expect("routed pools carry a router").route(
                    &views,
                    RouteRequest {
                        job: task.job as u64,
                        tokens,
                    },
                );
                *view_scratch = views;
                chosen
            }
        }
    }

    fn admit(&mut self, exec: usize, task: LlmTaskRef, work: LlmWork, cx: &mut ExecCtx<'_>) {
        let s = self.shard_of[exec];
        let local = exec - self.base[s];
        let before = cx.posts.len();
        // Shards only know local indices, so their own occupancy events
        // would mislabel executors: withhold the probe while delegating
        // and re-emit below with global indices.
        let probe = cx.probe.take();
        match &mut self.kind {
            ShardKind::Analytic(v) => v[s].admit(local, task, work, cx),
            ShardKind::Token(v) => v[s].admit(local, task, work, cx),
            ShardKind::Cluster(v) => v[s].admit(local, task, work, cx),
            ShardKind::Disagg { shards, prefill } => {
                let ready_at = prefill.arrival(cx.now, work.prompt_tokens);
                shards[s].admit_with_ready_at(local, task, work.decode_tokens(), ready_at, cx);
            }
        }
        remap_steps(&mut cx.posts[before..], self.base[s]);
        cx.probe = probe;
        if cx.probe.is_some() {
            let group = match &self.kind {
                ShardKind::Cluster(v) => Some(v[s].unit_view(local, exec).group),
                ShardKind::Disagg { shards, .. } => Some(shards[s].unit_view(local, exec).group),
                _ => None,
            };
            if let (Some(group), Some(router)) = (group, self.router.as_ref()) {
                cx.emit(llmsched_telemetry::ProbeEvent::Routed {
                    at: cx.now,
                    job_index: task.job as u32,
                    exec: exec as u32,
                    group: group as u32,
                    policy: router.name(),
                });
            }
            let occupancy = self.occupancy(exec) as u32;
            let capacity = self.capacity(exec) as u32;
            cx.emit(llmsched_telemetry::ProbeEvent::BatchAdmit {
                at: cx.now,
                exec: exec as u32,
                occupancy,
                capacity,
            });
        }
    }

    fn step(&mut self, exec: usize, epoch: u64, cx: &mut ExecCtx<'_>) -> StepOutcome {
        let s = self.shard_of[exec];
        let local = exec - self.base[s];
        let before = cx.posts.len();
        let out = match &mut self.kind {
            ShardKind::Analytic(v) => v[s].step(local, epoch, cx),
            ShardKind::Token(v) => v[s].step(local, epoch, cx),
            ShardKind::Cluster(v) => v[s].step(local, epoch, cx),
            ShardKind::Disagg { shards, .. } => shards[s].step(local, epoch, cx),
        };
        remap_steps(&mut cx.posts[before..], self.base[s]);
        out
    }

    fn drain(&mut self, exec: usize, task: LlmTaskRef, cx: &mut ExecCtx<'_>) {
        let s = self.shard_of[exec];
        let local = exec - self.base[s];
        let before = cx.posts.len();
        // Withhold the probe from the shard (local indices — see admit).
        let probe = cx.probe.take();
        match &mut self.kind {
            ShardKind::Analytic(v) => v[s].drain(local, task, cx),
            ShardKind::Token(v) => v[s].drain(local, task, cx),
            ShardKind::Cluster(v) => v[s].drain(local, task, cx),
            ShardKind::Disagg { shards, .. } => shards[s].drain(local, task, cx),
        }
        remap_steps(&mut cx.posts[before..], self.base[s]);
        cx.probe = probe;
        let occupancy = self.occupancy(exec) as u32;
        cx.emit(llmsched_telemetry::ProbeEvent::BatchDrain {
            at: cx.now,
            exec: exec as u32,
            occupancy,
        });
    }

    /// The window bound of a partitioned pool is the minimum over its
    /// shards' bounds (each shard sees only its own replicas; the global
    /// prefill pool contributes nothing — see [`DisaggExec::lookahead`]).
    fn lookahead(&self, now: SimTime, latency: &LatencyProfile) -> SimTime {
        (0..self.base.len())
            .map(|s| self.shard_ref(s).lookahead(now, latency))
            .min()
            .unwrap_or(SimTime(u64::MAX))
    }
}

/// The effects of one shard-handled event, replayed by the engine on the
/// main thread in exact batch order.
#[derive(Debug)]
pub(crate) enum HookFx {
    /// A `TaskFinish` the shard examined. When `valid`, the shard already
    /// drained the executor and `posts` holds the resulting re-timings
    /// (global indices, epoch bumps still pending); the engine runs the
    /// completion cascade with the live drain skipped. When stale,
    /// nothing happened and nothing will.
    Finish {
        /// Whether the event's epoch/state check passed at its replay point.
        valid: bool,
        /// Recorded hook posts (empty when stale).
        posts: Vec<Post>,
    },
    /// An `LlmStep` the shard ran.
    Step {
        /// Tasks the step completed, in completion order.
        finished: Vec<LlmTaskRef>,
        /// The step's scheduler-visibility flag.
        effective: bool,
        /// Recorded hook posts.
        posts: Vec<Post>,
    },
}

/// Drains the worker-local post buffer into a recorded effect list:
/// `Step` posts are remapped to global executor indices, and each
/// `Finish` post advances the worker's epoch shadow (the real bump
/// happens when the engine flushes the record at replay).
fn take_posts(
    posts: &mut Vec<Post>,
    base: usize,
    bumps: &mut HashMap<(usize, u32, u32), u32>,
) -> Vec<Post> {
    let mut recorded = Vec::with_capacity(posts.len());
    for p in posts.drain(..) {
        match p {
            Post::Finish { task, at } => {
                *bumps.entry((task.job, task.stage, task.task)).or_insert(0) += 1;
                recorded.push(Post::Finish { task, at });
            }
            Post::Step { exec, epoch, at } => recorded.push(Post::Step {
                exec: exec + base,
                epoch,
                at,
            }),
        }
    }
    recorded
}

/// Runs one shard's slice of a same-timestamp event batch on a worker
/// thread. `jobs` is shared read-only; epoch movement within the batch is
/// tracked in a local shadow, which is exact because every epoch bump for
/// a task placed on this shard originates from this shard's own hooks
/// (admissions only happen at dispatch, outside batch processing).
///
/// `items` are `(batch index, time, event)` in batch order; the returned
/// effects carry the batch index so the engine can replay them in the
/// exact order the sequential engine would have processed.
pub(crate) fn run_shard(
    shard: &mut dyn ExecutorBackend,
    base: usize,
    jobs: &[JobRt],
    latency: &LatencyProfile,
    items: &[(u32, SimTime, Event)],
) -> Vec<(u32, HookFx)> {
    let mut bumps: HashMap<(usize, u32, u32), u32> = HashMap::new();
    let mut done: HashSet<(usize, u32, u32)> = HashSet::new();
    let mut posts: Vec<Post> = Vec::new();
    let mut out = Vec::with_capacity(items.len());
    for &(idx, now, ev) in items {
        match ev {
            Event::TaskFinish {
                job,
                stage,
                task,
                epoch,
            } => {
                let key = (job, stage, task);
                let shadow_epoch =
                    jobs[job].task_epoch_of(stage, task) + bumps.get(&key).copied().unwrap_or(0);
                let exec = match jobs[job].task_state_of(stage, task) {
                    TaskState::Running { exec: Some(e) } => Some(e as usize),
                    _ => None,
                };
                match exec {
                    Some(e) if shadow_epoch == epoch && !done.contains(&key) => {
                        let mut cx = ExecCtx {
                            now,
                            latency,
                            posts: &mut posts,
                            probe: None,
                        };
                        shard.drain(e - base, LlmTaskRef { job, stage, task }, &mut cx);
                        done.insert(key);
                        let recorded = take_posts(&mut posts, base, &mut bumps);
                        out.push((
                            idx,
                            HookFx::Finish {
                                valid: true,
                                posts: recorded,
                            },
                        ));
                    }
                    _ => out.push((
                        idx,
                        HookFx::Finish {
                            valid: false,
                            posts: Vec::new(),
                        },
                    )),
                }
            }
            Event::LlmStep { exec, epoch } => {
                let mut cx = ExecCtx {
                    now,
                    latency,
                    posts: &mut posts,
                    probe: None,
                };
                let o = shard.step(exec - base, epoch, &mut cx);
                let recorded = take_posts(&mut posts, base, &mut bumps);
                for f in &o.finished {
                    done.insert((f.job, f.stage, f.task));
                }
                out.push((
                    idx,
                    HookFx::Step {
                        finished: o.finished,
                        effective: o.effective,
                        posts: recorded,
                    },
                ));
            }
            Event::Arrival { .. } => unreachable!("arrivals are engine-owned, never sharded"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::pool;
    use super::*;
    use crate::event::EventQueue;
    use llmsched_cluster::{DisaggSpec, LatencyProfile as Profile, ReplicaGroup, RoutingPolicy};
    use llmsched_dag::time::SimDuration;

    fn cfg(mode: EngineMode) -> ClusterConfig {
        ClusterConfig {
            llm_executors: 5,
            max_batch: 4,
            mode,
            ..Default::default()
        }
    }

    fn t(job: usize, task: u32) -> LlmTaskRef {
        LlmTaskRef {
            job,
            stage: 0,
            task,
        }
    }

    fn w(tokens: u64) -> LlmWork {
        LlmWork {
            prompt_tokens: 0,
            output_tokens: tokens,
        }
    }

    #[test]
    fn partition_layout_is_contiguous_and_balanced() {
        let sb = ShardedBackend::build(&cfg(EngineMode::Analytic), 2);
        assert_eq!(sb.partitions(), 2);
        assert_eq!(sb.n_execs(), 5);
        assert_eq!(sb.bases(), &[0, 3]);
        assert_eq!(
            (0..5).map(|e| sb.shard_of(e)).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1]
        );
        assert_eq!(sb.descriptor(), "analytic+p2");
        assert_eq!(chunk_sizes(4, 4), vec![1, 1, 1, 1]);
        assert_eq!(chunk_sizes(7, 3), vec![3, 2, 2]);
    }

    #[test]
    fn sharded_admit_and_views_match_the_monolith() {
        let config = cfg(EngineMode::Analytic);
        let mut mono = pool::build_backend(&config);
        let mut sharded = ShardedBackend::build(&config, 2);
        let latency = config.latency.clone();
        let mut posts = Vec::new();
        // Drive six identical placements through both pools; placement
        // and occupancy must stay in lockstep.
        for i in 0..6 {
            let task = t(0, i);
            let pm = mono.place(task, w(10)).unwrap();
            let ps = sharded.place(task, w(10)).unwrap();
            assert_eq!(pm, ps, "placement diverged at task {i}");
            let mut cx = ExecCtx {
                now: SimTime::ZERO,
                latency: &latency,
                posts: &mut posts,
                probe: None,
            };
            mono.admit(pm, task, w(10), &mut cx);
            posts.clear();
            let mut cx = ExecCtx {
                now: SimTime::ZERO,
                latency: &latency,
                posts: &mut posts,
                probe: None,
            };
            sharded.admit(ps, task, w(10), &mut cx);
            posts.clear();
        }
        for e in 0..5 {
            assert_eq!(mono.occupancy(e), sharded.occupancy(e), "exec {e}");
            assert_eq!(mono.capacity(e), sharded.capacity(e));
        }
    }

    #[test]
    fn disagg_shards_share_the_global_prefill_fifo() {
        // 1 prefill replica, 4 decode replicas split 2+2. Two admissions
        // to decode replicas on DIFFERENT shards must still serialize
        // through the one prefill replica.
        let profile = Profile::new(vec![(1, SimDuration::from_millis(10))]).unwrap();
        let spec = ClusterSpec {
            groups: vec![
                ReplicaGroup::new("prefill", 1, 1, profile.clone()),
                ReplicaGroup::new("decode", 4, 4, profile.clone()),
            ],
            routing: RoutingPolicy::LeastLoaded,
            disagg: Some(DisaggSpec {
                prefill_group: 0,
                prefill_per_token: SimDuration::from_millis(1),
                transfer_delay: SimDuration::ZERO,
            }),
        };
        let config = ClusterConfig {
            mode: EngineMode::Disagg,
            spec: Some(spec),
            ..Default::default()
        };
        let mut sb = ShardedBackend::build(&config, 2);
        assert_eq!(sb.n_execs(), 4);
        let mut posts = Vec::new();
        let mut cx = ExecCtx {
            now: SimTime::ZERO,
            latency: &profile,
            posts: &mut posts,
            probe: None,
        };
        // 100-token prompts: first arrival at 0.1 s, second (queued
        // behind it) at 0.2 s — even though exec 0 and exec 2 live on
        // different shards.
        sb.admit(
            0,
            t(0, 0),
            LlmWork {
                prompt_tokens: 100,
                output_tokens: 1,
            },
            &mut cx,
        );
        sb.admit(
            2,
            t(0, 1),
            LlmWork {
                prompt_tokens: 100,
                output_tokens: 1,
            },
            &mut cx,
        );
        let times: Vec<f64> = posts
            .iter()
            .map(|p| match p {
                Post::Step { exec, at, .. } => {
                    assert!([0usize, 2].contains(exec), "global indices in posts");
                    at.as_secs_f64()
                }
                other => panic!("unexpected post {other:?}"),
            })
            .collect();
        assert!((times[0] - 0.1).abs() < 1e-9);
        assert!((times[1] - 0.2).abs() < 1e-9, "FIFO across shards");
    }

    #[test]
    fn run_shard_shadows_epochs_within_a_batch() {
        // One executor, two co-batched tasks. The first finish re-times
        // the survivor (epoch bump in the shadow); a stale finish for the
        // survivor later in the same batch must be judged invalid.
        let latency = Profile::new(vec![(1, SimDuration::from_millis(10))]).unwrap();
        let jobs = vec![crate::state::test_support::job_with_llm_tasks(2)];
        let mut shard = AnalyticExec::new(1, 8);
        let mut posts = Vec::new();
        let mut queue = EventQueue::new();
        let mut jobs_mut = jobs;
        jobs_mut[0].start_task(0, 0, Some(0), SimTime::ZERO);
        jobs_mut[0].start_task(0, 1, Some(0), SimTime::ZERO);
        {
            let mut cx = ExecCtx {
                now: SimTime::ZERO,
                latency: &latency,
                posts: &mut posts,
                probe: None,
            };
            shard.admit(0, t(0, 0), w(100), &mut cx);
            shard.admit(0, t(0, 1), w(100), &mut cx);
        }
        super::super::flush_posts(&mut posts, &mut jobs_mut, &mut queue);
        let e0 = jobs_mut[0].task_epoch_of(0, 0);
        let e1 = jobs_mut[0].task_epoch_of(0, 1);
        let now = SimTime::from_secs_f64(2.0);
        let items = vec![
            (
                0u32,
                now,
                Event::TaskFinish {
                    job: 0,
                    stage: 0,
                    task: 0,
                    epoch: e0,
                },
            ),
            // Pre-drain epoch for task 1: the drain of task 0 re-times
            // task 1, so this event is stale *within the batch*.
            (
                1u32,
                now,
                Event::TaskFinish {
                    job: 0,
                    stage: 0,
                    task: 1,
                    epoch: e1,
                },
            ),
        ];
        let fx = run_shard(&mut shard, 0, &jobs_mut, &latency, &items);
        assert_eq!(fx.len(), 2);
        match &fx[0].1 {
            HookFx::Finish { valid: true, posts } => {
                assert_eq!(posts.len(), 1, "survivor re-timed");
            }
            other => panic!("expected valid finish, got {other:?}"),
        }
        match &fx[1].1 {
            HookFx::Finish { valid: false, .. } => {}
            other => panic!("expected shadow-stale finish, got {other:?}"),
        }
    }
}

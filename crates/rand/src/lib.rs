//! # rand (vendored subset)
//!
//! A deterministic, dependency-free, API-compatible subset of the
//! [`rand`](https://crates.io/crates/rand) 0.8 crate. This workspace must
//! build **fully offline** (no registry access), so the handful of
//! primitives the workload generators, the Bayesian sampler and the
//! ε-greedy scheduler need are provided here instead of pulled from
//! crates.io:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`, `fill` over the usual
//!   numeric types and `Range`/`RangeInclusive` bounds;
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`rngs::StdRng`] — a seeded xoshiro256++ generator.
//!
//! Semantics match `rand` 0.8 (half-open ranges exclude the upper bound,
//! `gen::<f64>()` is uniform on `[0, 1)`, `gen_bool(p)` is Bernoulli(p)),
//! but the *streams* differ: `StdRng` here is xoshiro256++ rather than
//! ChaCha12, so seeds do not reproduce upstream `rand` sequences. Every
//! consumer in this workspace treats seeds as opaque, so only in-repo
//! reproducibility matters — and that is bit-exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from uniformly — the
/// `SampleRange` trait of upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for the small
                // spans simulation code draws from.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng); // [0, 1)
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform on `[0, 1)`; integers: uniform over the full
    /// domain; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: **xoshiro256++**
    /// (Blackman & Vigna), seeded through SplitMix64 exactly as the
    /// reference implementation recommends. Fast, tiny state, passes
    /// BigCrush — more than enough for simulation workload synthesis.
    ///
    /// Unlike upstream `rand`'s ChaCha12-based `StdRng`, this generator is
    /// not cryptographically secure; nothing in this workspace needs that.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drifted: {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..7usize);
            assert!((3..7).contains(&i));
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
        }
        // All values of a small range are reached.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "Bernoulli(0.3) drifted: {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

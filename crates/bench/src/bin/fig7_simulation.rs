//! **Fig. 7** — simulation results: average JCT of the seven policies on
//! the four workload types, for 100/200/300/400 jobs at λ = 0.9 (analytic
//! engine — the paper's simulator).
//!
//! Paper shape to reproduce: LLMSched lowest everywhere (reductions of
//! 36–79% / 14–46% / 36–67% / 24–52% across the four workloads), the gap
//! widening with job count; Decima catastrophic on Planning (omitted from
//! the paper's plot, > 100 s).
//!
//! Writes `results/fig7.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig7_simulation
//!         [--quick] [--seeds N]`

use llmsched_bench::runner::run_policies_parallel;
use llmsched_bench::{write_csv, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_workloads::prelude::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: u64 = std::env::args()
        .skip_while(|a| a != "--seeds")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 2 });
    let job_counts: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![100, 200, 300, 400]
    };

    let art = TrainedArtifacts::train(
        if quick {
            150
        } else {
            llmsched_bench::roster::DEFAULT_TRAINING_PER_APP
        },
        1,
    );
    let mut table = Table::new(vec!["workload", "n_jobs", "policy", "avg_jct_s"]);

    for kind in WorkloadKind::ALL {
        println!("== {} workload ==", kind.name());
        println!(
            "{:<10} {}",
            "n_jobs",
            Policy::FIG7.map(|p| format!("{:>10}", p.name())).join(" ")
        );
        for &n_jobs in &job_counts {
            let mut sums = vec![0.0f64; Policy::FIG7.len()];
            for seed in 0..seeds {
                let exp = ExperimentConfig {
                    n_jobs,
                    ..ExperimentConfig::paper_default(kind, 42 + seed)
                };
                let results = run_policies_parallel(&art, &Policy::FIG7, &exp);
                for (i, r) in results.iter().enumerate() {
                    assert_eq!(r.incomplete, 0, "{} stranded jobs", r.scheduler);
                    sums[i] += r.avg_jct_secs();
                }
            }
            let means: Vec<f64> = sums.iter().map(|s| s / seeds as f64).collect();
            println!(
                "{:<10} {}",
                n_jobs,
                means
                    .iter()
                    .map(|m| format!("{m:>10.1}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            for (p, m) in Policy::FIG7.iter().zip(&means) {
                table.row(vec![
                    kind.name().to_string(),
                    n_jobs.to_string(),
                    p.name().to_string(),
                    format!("{m:.2}"),
                ]);
            }
            let ours = means[Policy::FIG7.len() - 1];
            let best_baseline = means[..Policy::FIG7.len() - 1]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let worst_baseline = means[..Policy::FIG7.len() - 1]
                .iter()
                .copied()
                .fold(0.0, f64::max);
            println!(
                "           LLMSched reduction: {:.0}% vs best baseline, {:.0}% vs worst",
                (1.0 - ours / best_baseline) * 100.0,
                (1.0 - ours / worst_baseline) * 100.0
            );
        }
        println!();
    }
    let path = write_csv(&table, "fig7");
    println!("wrote {}", path.display());
}

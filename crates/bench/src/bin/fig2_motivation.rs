//! **Fig. 2** — the motivating example: two jobs, one LLM executor
//! (batch 1), one regular executor; SJF versus uncertainty-aware
//! scheduling.
//!
//! This binary re-runs the `motivation` example's scenario through the
//! bench reporting (see `examples/motivation.rs` for the narrated
//! walk-through). Paper: SJF averages 6.5 s (strictly job-serial), the
//! uncertainty-aware schedule 5.0 s. Our work-conserving SJF achieves
//! 6.0 s; the uncertainty-aware schedule reproduces 5.0 s exactly.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig2_motivation`

use llmsched_bench::{write_csv, Table};

fn main() {
    let (sjf, ours) = fig2::run();
    let mut t = Table::new(vec!["policy", "job1_jct_s", "job2_jct_s", "avg_jct_s"]);
    for r in [&sjf, &ours] {
        let j1 = r
            .jobs
            .iter()
            .find(|j| j.id.0 == 1)
            .expect("job 1")
            .jct()
            .as_secs_f64();
        let j2 = r
            .jobs
            .iter()
            .find(|j| j.id.0 == 2)
            .expect("job 2")
            .jct()
            .as_secs_f64();
        t.row(vec![
            r.scheduler.clone(),
            format!("{j1:.1}"),
            format!("{j2:.1}"),
            format!("{:.2}", r.avg_jct_secs()),
        ]);
        println!(
            "{:<28} job1 {:>4.1}s  job2 {:>4.1}s  avg {:>5.2}s",
            r.scheduler,
            j1,
            j2,
            r.avg_jct_secs()
        );
    }
    println!("(paper: SJF 6.5 s — strictly job-serial — vs uncertainty-aware 5.0 s)");
    write_csv(&t, "fig2");
    assert!(ours.avg_jct_secs() < sjf.avg_jct_secs());
}

mod fig2 {
    use llmsched_core::prelude::*;
    use llmsched_dag::prelude::*;
    use llmsched_schedulers::prelude::*;
    use llmsched_sim::metrics::SimResult;
    use llmsched_sim::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ta_template() -> Template {
        let mut b = TemplateBuilder::new(AppId(100), "mini_task_automation");
        let plan = b.llm("TA-1 plan");
        let dynamic = b.dynamic(
            "TA exec",
            plan,
            vec![
                Candidate {
                    name: "fast tool".into(),
                    class: ExecutorClass::Regular,
                },
                Candidate {
                    name: "slow tool".into(),
                    class: ExecutorClass::Regular,
                },
            ],
        );
        b.edge(plan, dynamic);
        b.build().expect("valid template")
    }

    fn cg_template() -> Template {
        let mut b = TemplateBuilder::new(AppId(101), "mini_code_generation");
        let c1 = b.llm("CG-1");
        let c2 = b.llm("CG-2");
        let c3 = b.regular("CG-3");
        b.edge(c1, c2);
        b.edge(c2, c3);
        b.build().expect("valid template")
    }

    fn llm_secs(secs: f64) -> TaskWork {
        TaskWork::Llm {
            prompt_tokens: 0,
            output_tokens: (secs * 50.0).round() as u32,
        }
    }

    fn reg_secs(secs: f64) -> TaskWork {
        TaskWork::Regular {
            duration: SimDuration::from_secs_f64(secs),
        }
    }

    fn ta_job(id: u64, t: &Template, fast: bool, slow: f64) -> JobSpec {
        let (cand, dur) = if fast { (0, 1.0) } else { (1, slow) };
        let (plan, dynamic, tool) = (StageId(0), StageId(1), StageId(2));
        JobSpec::new(
            JobId(id),
            t,
            SimTime::ZERO,
            vec![
                StageSpec::executing("TA-1 plan", StageKind::Llm, vec![llm_secs(2.0)]),
                StageSpec::executing("TA exec", StageKind::DynamicPlaceholder, vec![]),
                StageSpec {
                    revealed_by: Some(plan),
                    parent_dynamic: Some(dynamic),
                    candidate: Some(cand),
                    ..StageSpec::executing("tool", StageKind::Regular, vec![reg_secs(dur)])
                },
            ],
            vec![(plan, tool), (tool, dynamic)],
        )
        .expect("valid TA job")
    }

    fn cg_job(id: u64, t: &Template, mid: f64) -> JobSpec {
        JobSpec::new(
            JobId(id),
            t,
            SimTime::ZERO,
            vec![
                StageSpec::executing("CG-1", StageKind::Llm, vec![llm_secs(2.0)]),
                StageSpec::executing("CG-2", StageKind::Llm, vec![llm_secs(mid)]),
                StageSpec::executing("CG-3", StageKind::Regular, vec![reg_secs(1.0)]),
            ],
            vec![],
        )
        .expect("valid CG job")
    }

    /// Runs (SJF, LLMSched) on the Fig. 2 scenario.
    pub fn run() -> (SimResult, SimResult) {
        let ta = ta_template();
        let cg = cg_template();
        let templates: TemplateSet = [ta.clone(), cg.clone()].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(7);
        let mut corpus = Vec::new();
        for i in 0..160u64 {
            corpus.push(ta_job(
                1000 + i,
                &ta,
                i % 10 < 3,
                19.0 + rng.gen_range(-2.0..2.0),
            ));
            corpus.push(cg_job(2000 + i, &cg, 2.0 + 4.0 * rng.gen_range(0.5..1.5)));
        }
        let jobs = || vec![ta_job(1, &ta, true, 19.0), cg_job(2, &cg, 2.0)];
        let cluster = ClusterConfig {
            regular_executors: 1,
            llm_executors: 1,
            max_batch: 1,
            latency: LatencyProfile::new(vec![(1, SimDuration::from_millis(20))]).expect("valid"),
            ..ClusterConfig::default()
        };
        let per_token = SimDuration::from_millis(20);
        let mut sjf = Sjf::new(AppPriors::from_training(&corpus, per_token));
        let r_sjf = simulate(&cluster, &templates, jobs(), &mut sjf);
        let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
        let mut ours = LlmSched::new(
            profiler,
            LlmSchedConfig {
                epsilon: 1.0,
                sampling_ratio: 1.0,
                interval_tail_mass: 0.0,
                ..LlmSchedConfig::default()
            },
        );
        let r_ours = simulate(&cluster, &templates, jobs(), &mut ours);
        (r_sjf, r_ours)
    }
}

//! **Fig. 5** — Pearson-correlation heatmaps of stage durations for
//! (a) sequence sorting and (b) code generation.
//!
//! The paper reports e.g. corr(S0, S3) ≈ 0.7 for sorting and
//! corr(S3, S6) ≈ 0.9 for code generation (unexecuted stages count as 0 s,
//! footnote 2). Writes `results/fig5{a,b}.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig5_heatmap [--quick]`

use llmsched_bayes::stats::pearson_matrix;
use llmsched_bench::{write_csv, Table};
use llmsched_dag::ids::JobId;
use llmsched_dag::time::{SimDuration, SimTime};
use llmsched_workloads::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn heatmap(kind: AppKind, n_jobs: usize, seed: u64) -> Vec<Vec<f64>> {
    let per_token = SimDuration::from_secs_f64(NOMINAL_PER_TOKEN_SECS);
    let g = kind.generator();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_stages = g.template().len();
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n_jobs); n_stages];
    for i in 0..n_jobs {
        let j = g.generate(JobId(i as u64), SimTime::ZERO, &mut rng);
        for (s, d) in j
            .template_stage_durations_secs(per_token)
            .iter()
            .enumerate()
        {
            cols[s].push(*d);
        }
    }
    pearson_matrix(&cols)
}

fn print_and_save(name: &str, label: &str, m: &[Vec<f64>]) {
    println!("Fig. 5{label} — {name} stage-duration Pearson matrix:");
    print!("      ");
    for j in 0..m.len() {
        print!("S{j:<5}");
    }
    println!();
    let header: Vec<String> = std::iter::once("stage".to_string())
        .chain((0..m.len()).map(|j| format!("S{j}")))
        .collect();
    let mut t = Table::new(header);
    for (i, row) in m.iter().enumerate() {
        print!("S{i:<4} ");
        let mut cells = vec![format!("S{i}")];
        for v in row {
            print!("{v:>5.2} ");
            cells.push(format!("{v:.3}"));
        }
        println!();
        t.row(cells);
    }
    write_csv(&t, &format!("fig5{label}"));
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 150 } else { 500 };

    let sorting = heatmap(AppKind::SequenceSorting, n, 2);
    print_and_save("sequence sorting", "a", &sorting);
    println!(
        "  corr(S0, S3) = {:.2}   (paper: ~0.7)\n  corr(S0, S9) = {:.2}\n",
        sorting[0][3], sorting[0][9]
    );

    let codegen = heatmap(AppKind::CodeGeneration, n * 2, 3);
    print_and_save("code generation", "b", &codegen);
    // Stage ids: 1 = code gen 1, 4 = code gen 2 (paper's S3/S6 use its own
    // numbering; the claim is that successive code-gen stages correlate
    // at ~0.9).
    println!(
        "  corr(code gen 1, code gen 2) = {:.2}   (paper: ~0.9)\n  corr(reflex 2, code gen 2) = {:.2}",
        codegen[1][4], codegen[3][4]
    );
}

//! **Fig. 9** — sensitivity analysis of LLMSched:
//!
//! * (a) exploration probability ε sweep (paper: U-shaped normalized JCT —
//!   a balance between exploration and exploitation);
//! * (b) task sampling ratio r sweep (paper: U-shaped — too small is
//!   inaccurate, too large delays small jobs);
//! * (c) job arrival rate λ ∈ {0.6, 0.9, 1.2} per workload (normalized to
//!   λ = 0.9).
//!
//! Writes `results/fig9{a,b,c}.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig9_sensitivity [--quick]`

use llmsched_bench::{run_policy, write_csv, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_core::prelude::LlmSchedConfig;
use llmsched_workloads::prelude::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_jobs = if quick { 120 } else { 300 };
    let art = TrainedArtifacts::train(
        if quick {
            150
        } else {
            llmsched_bench::roster::DEFAULT_TRAINING_PER_APP
        },
        1,
    );
    let base = |kind, seed| ExperimentConfig {
        n_jobs,
        ..ExperimentConfig::paper_default(kind, seed)
    };

    // --- (a) ε sweep on the Planning workload (the mix where exploration
    //     has the most to reveal; the Mixed curve is flatter). -----------
    println!("Fig. 9a — exploration probability ε (Planning, normalized):");
    let eps_values = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let jcts = llmsched_bench::sweep::map(&eps_values, |&eps| {
        let exp = ExperimentConfig {
            llmsched: Some(LlmSchedConfig {
                epsilon: eps,
                ..Default::default()
            }),
            ..base(WorkloadKind::Planning, 42)
        };
        run_policy(&art, Policy::LlmSched, &exp).avg_jct_secs()
    });
    let best = jcts.iter().copied().fold(f64::INFINITY, f64::min);
    let mut t = Table::new(vec!["epsilon", "avg_jct_s", "norm_jct"]);
    for (&eps, &j) in eps_values.iter().zip(&jcts) {
        println!("  eps {eps:>3.1}: {j:>7.1}s  norm {:.3}", j / best);
        t.row(vec![
            format!("{eps}"),
            format!("{j:.2}"),
            format!("{:.4}", j / best),
        ]);
    }
    write_csv(&t, "fig9a");

    // --- (b) sampling ratio r sweep -----------------------------------
    println!("\nFig. 9b — task sampling ratio r (Mixed, normalized):");
    let r_values = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let jcts = llmsched_bench::sweep::map(&r_values, |&r| {
        let exp = ExperimentConfig {
            llmsched: Some(LlmSchedConfig {
                sampling_ratio: r,
                ..Default::default()
            }),
            ..base(WorkloadKind::Mixed, 42)
        };
        run_policy(&art, Policy::LlmSched, &exp).avg_jct_secs()
    });
    let best = jcts.iter().copied().fold(f64::INFINITY, f64::min);
    let mut t = Table::new(vec!["sampling_ratio", "avg_jct_s", "norm_jct"]);
    for (&r, &j) in r_values.iter().zip(&jcts) {
        println!("  r {r:>3.1}: {j:>7.1}s  norm {:.3}", j / best);
        t.row(vec![
            format!("{r}"),
            format!("{j:.2}"),
            format!("{:.4}", j / best),
        ]);
    }
    write_csv(&t, "fig9b");

    // --- (c) arrival rate λ per workload, normalized to λ = 0.9 --------
    println!("\nFig. 9c — arrival rate λ (normalized to 0.9 per workload):");
    let mut t = Table::new(vec!["workload", "lambda", "avg_jct_s", "norm_jct"]);
    let lambdas = [0.6, 0.9, 1.2];
    for kind in WorkloadKind::ALL {
        let js = llmsched_bench::sweep::map(&lambdas, |&lambda| {
            let exp = ExperimentConfig {
                lambda,
                ..base(kind, 42)
            };
            run_policy(&art, Policy::LlmSched, &exp).avg_jct_secs()
        });
        // Normalize to the λ = 0.9 run (index 1).
        let ref_jct = js[1];
        print!("  {:<11}", kind.name());
        for (&lambda, &j) in lambdas.iter().zip(&js) {
            print!("  λ={lambda}: {:>6.2}", j / ref_jct);
            t.row(vec![
                kind.name().to_string(),
                format!("{lambda}"),
                format!("{j:.2}"),
                format!("{:.4}", j / ref_jct),
            ]);
        }
        println!();
    }
    write_csv(&t, "fig9c");
}

//! **Table I** — scheduling overhead per invocation (ms) for every method
//! on the four workloads, measured on analytic-engine runs at the paper's
//! defaults (300 jobs, λ = 0.9). Each cell reports `mean (p50/p99)`: the
//! mean is the paper's metric, the percentiles expose invocation-time
//! spikes (cache re-keys, BN inference on evidence changes) a mean hides.
//!
//! Paper shape: FCFS/SJF/Fair/Argus well under 1 ms; LLMSched under 3 ms
//! (its figure includes BN inference and entropy calculation); Decima and
//! Carbyne the most expensive of their groups.
//!
//! Writes `results/table1_analytic.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin table1_overhead [--quick]`

use llmsched_bench::{run_policy, write_csv, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_workloads::prelude::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_jobs = if quick { 100 } else { 300 };
    let art = TrainedArtifacts::train(
        if quick {
            150
        } else {
            llmsched_bench::roster::DEFAULT_TRAINING_PER_APP
        },
        1,
    );

    let mut table = Table::new(vec![
        "policy",
        "Mixed",
        "Mixed p50",
        "Mixed p99",
        "Predefined",
        "Predefined p50",
        "Predefined p99",
        "Chain-like",
        "Chain-like p50",
        "Chain-like p99",
        "Planning",
        "Planning p50",
        "Planning p99",
    ]);
    println!(
        "{:<12} {:>22} {:>22} {:>22} {:>22}   mean (p50/p99) ms per invocation",
        "policy", "Mixed", "Predefined", "Chain-like", "Planning"
    );
    for policy in Policy::FIG7 {
        let mut cells = vec![policy.name().to_string()];
        let mut row_print = format!("{:<12}", policy.name());
        for kind in WorkloadKind::ALL {
            let exp = ExperimentConfig {
                n_jobs,
                ..ExperimentConfig::paper_default(kind, 42)
            };
            let r = run_policy(&art, policy, &exp);
            let ms = r.sched_overhead_ms();
            let p = r.sched_overhead_percentiles();
            cells.push(format!("{ms:.3}"));
            cells.push(format!("{:.3}", p.p50_ms));
            cells.push(format!("{:.3}", p.p99_ms));
            row_print.push_str(&format!(
                " {:>22}",
                format!("{ms:.3} ({:.3}/{:.3})", p.p50_ms, p.p99_ms)
            ));
        }
        println!("{row_print}");
        table.row(cells);
    }
    println!("\nwrote {}", write_csv(&table, "table1_analytic").display());
}

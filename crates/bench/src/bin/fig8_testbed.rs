//! **Fig. 8 + Table I** — testbed results: average JCT of every policy on
//! the four workloads (λ = 0.9, 300 jobs) under the **token-level**
//! continuous-batching engine (the GPU-testbed stand-in, DESIGN.md §6),
//! plus the per-invocation scheduling overhead of Table I measured on the
//! same runs.
//!
//! Paper shape: results consistent with the simulator (Fig. 7); LLMSched
//! reduces 45–66% / 26–46% / 35–45% / 38–51%; overheads — simple
//! heuristics < 1 ms, LLMSched < 3 ms, Decima/Carbyne the slowest.
//!
//! Writes `results/fig8.csv` and `results/table1.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig8_testbed [--quick]`

use llmsched_bench::runner::run_policies_parallel;
use llmsched_bench::{write_csv, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_sim::engine::EngineMode;
use llmsched_workloads::prelude::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_jobs = if quick { 120 } else { 300 };
    let chunk = if quick { 8 } else { 4 };

    let art = TrainedArtifacts::train(
        if quick {
            150
        } else {
            llmsched_bench::roster::DEFAULT_TRAINING_PER_APP
        },
        1,
    );
    let mut fig8 = Table::new(vec!["workload", "policy", "avg_jct_s"]);
    let mut table1 = Table::new(vec!["workload", "policy", "overhead_ms"]);

    for kind in WorkloadKind::ALL {
        let mut cluster = kind.default_cluster();
        cluster.iteration_chunk = chunk;
        let exp = ExperimentConfig {
            n_jobs,
            mode: EngineMode::TokenLevel,
            cluster: Some(cluster),
            ..ExperimentConfig::paper_default(kind, 42)
        };
        let results = run_policies_parallel(&art, &Policy::FIG7, &exp);
        println!(
            "== {} workload (token-level, {n_jobs} jobs) ==",
            kind.name()
        );
        for r in &results {
            assert_eq!(r.incomplete, 0, "{} stranded jobs", r.scheduler);
            println!(
                "  {:<10} avg JCT {:>8.1}s   overhead {:>7.3} ms over {} invocations",
                r.scheduler,
                r.avg_jct_secs(),
                r.sched_overhead_ms(),
                r.sched_calls
            );
            fig8.row(vec![
                kind.name().to_string(),
                r.scheduler.clone(),
                format!("{:.2}", r.avg_jct_secs()),
            ]);
            table1.row(vec![
                kind.name().to_string(),
                r.scheduler.clone(),
                format!("{:.4}", r.sched_overhead_ms()),
            ]);
        }
        let ours = results.last().expect("llmsched last").avg_jct_secs();
        let best = results[..results.len() - 1]
            .iter()
            .map(|r| r.avg_jct_secs())
            .fold(f64::INFINITY, f64::min);
        println!(
            "  -> LLMSched reduction vs best baseline: {:.0}%\n",
            (1.0 - ours / best) * 100.0
        );
    }
    println!("wrote {}", write_csv(&fig8, "fig8").display());
    println!("wrote {}", write_csv(&table1, "table1").display());
}

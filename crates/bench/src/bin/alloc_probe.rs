//! **Allocation probe** — per-job allocation counts across schedulers on
//! a 1k-job Mixed sim, via a counting global allocator.
//!
//! The companion of `tests/alloc_smoke.rs`: the test asserts budgets in
//! CI, this binary prints the actual numbers (engine + baselines vs
//! LLMSched incremental vs the rebuild reference) so layout regressions
//! can be localized by eye. The harness (allocator shim, corpus, cluster
//! shape, workload seed) deliberately mirrors the test's — keep the two
//! in sync when changing the measurement methodology.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin alloc_probe`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
struct CountingAlloc;
static ALLOCS: AtomicU64 = AtomicU64::new(0);
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, n)
    }
}
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    use llmsched_core::scheduler::{LlmSched, LlmSchedConfig};
    use llmsched_sim::engine::ClusterConfig;
    use llmsched_workloads::prelude::*;
    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, 100, 1);
    let profiler = llmsched_core::profiler::Profiler::train(
        &templates,
        &corpus,
        &llmsched_core::profiler::ProfilerConfig::default(),
    );
    let n_jobs = 1_000;
    let cluster = ClusterConfig {
        regular_executors: 32,
        llm_executors: 8,
        ..WorkloadKind::Mixed.default_cluster()
    };

    for name in [
        "fcfs",
        "srtf",
        "llmsched",
        "llmsched-nounc",
        "llmsched-nobn",
        "llmsched-rebuild",
    ] {
        let w = generate_workload(WorkloadKind::Mixed, n_jobs, 4.0, 42);
        let mut sched: Box<dyn llmsched_sim::scheduler::Scheduler> = match name {
            "fcfs" => Box::new(llmsched_schedulers::basic::Fcfs::new()),
            "srtf" => Box::new(llmsched_schedulers::basic::Srtf::new(
                llmsched_schedulers::util::AppPriors::from_training(
                    &corpus,
                    cluster.latency.per_token_b1(),
                ),
            )),
            "llmsched-nounc" => Box::new(LlmSched::new(
                profiler.clone(),
                LlmSchedConfig {
                    use_uncertainty: false,
                    ..LlmSchedConfig::default()
                },
            )),
            "llmsched-nobn" => Box::new(LlmSched::new(
                profiler.clone(),
                LlmSchedConfig {
                    use_bn: false,
                    ..LlmSchedConfig::default()
                },
            )),
            "llmsched-rebuild" => Box::new(LlmSched::new(
                profiler.clone(),
                LlmSchedConfig {
                    incremental: false,
                    ..LlmSchedConfig::default()
                },
            )),
            _ => Box::new(LlmSched::new(profiler.clone(), LlmSchedConfig::default())),
        };
        let before = ALLOCS.load(Ordering::Relaxed);
        let r = llmsched_sim::engine::simulate(&cluster, &w.templates, w.jobs, &mut sched);
        let during = ALLOCS.load(Ordering::Relaxed) - before;
        println!(
            "{name}: {:.0} allocs/job, incomplete {}",
            during as f64 / n_jobs as f64,
            r.incomplete
        );
    }
}

//! **Drift adaptation** — frozen vs online profiling under
//! non-stationary traffic: the evaluation for the versioned
//! [`ProfileStore`] path (observation-driven snapshots, cold-start
//! bootstrapping, drift-triggered re-learning).
//!
//! Two scenarios, each run with the same workload under two schedulers
//! that differ **only** in profile-update cadence:
//!
//! * **drift** — a Chain-like mix in which code-generation jobs speed up
//!   to 0.3x their trained durations mid-run ([`DriftSpec`]). The frozen
//!   profiler keeps predicting the old regime, so SRTF delays jobs that
//!   are now short; the online store's drift trigger re-discretizes and
//!   re-learns, restoring the cross-app ordering.
//! * **cold_start** — a Mixed mix in which code generation is held out of
//!   the training corpus entirely. The frozen profiler never learns it
//!   (zero-work estimates forever); the online store bootstraps a profile
//!   from a Laplace prior after a handful of completions and converges.
//!
//! Metrics: average JCT per mode, plus *calibration error over time* —
//! the bias between prior-predicted total work at arrival and realized
//! nominal work (`|Σpred/Σtruth − 1|`), bucketed into completion-order
//! thirds.
//!
//! Usage:
//!   cargo run --release -p llmsched-bench --bin drift_adapt
//!     [--quick]        # one seed, smaller workloads (CI)
//!     [--check]        # exit non-zero unless online beats frozen on the
//!                      # drift mix and cold-start calibration error falls
//!     [--out <path>]   # default results/drift_adapt.json
//!     [--trace <prefix>]  # export a probed online drift run as
//!                         # <prefix>.jsonl + <prefix>.trace.json (with
//!                         # decision provenance: evidence masks, profile
//!                         # versions, posterior work estimates)
//!     [--timeseries]      # print that run's windowed time-series

use std::collections::HashMap;
use std::fmt::Write as _;

use llmsched_bayes::network::Evidence;
use llmsched_core::prelude::*;
use llmsched_dag::ids::{AppId, JobId};
use llmsched_dag::time::SimDuration;
use llmsched_sim::engine::{simulate, simulate_probed};
use llmsched_sim::scheduler::{Preference, SchedContext, SchedDelta, Scheduler};
use llmsched_sim::telemetry::{TraceConfig, TraceRecorder, WindowConfig};
use llmsched_workloads::prelude::*;

/// One completed job's calibration sample, in completion order.
struct Sample {
    app: AppId,
    /// Prior predicted total work at arrival (batch-1 seconds).
    pred: f64,
    /// Realized nominal work (batch-1 seconds).
    truth: f64,
}

/// Wraps LLMSched to record, per job, the prior work prediction at
/// arrival (from the scheduler's own profile store) and the realized
/// nominal work (accumulated from `StageObserved` deltas).
struct CalibProbe {
    inner: LlmSched,
    truth: HashMap<JobId, f64>,
    pred: HashMap<JobId, f64>,
    arrivals: Vec<JobId>,
    samples: Vec<Sample>,
    apps: HashMap<JobId, AppId>,
}

impl CalibProbe {
    fn new(inner: LlmSched) -> Self {
        CalibProbe {
            inner,
            truth: HashMap::new(),
            pred: HashMap::new(),
            arrivals: Vec::new(),
            samples: Vec::new(),
            apps: HashMap::new(),
        }
    }
}

impl Scheduler for CalibProbe {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_delta(&mut self, d: &SchedDelta) {
        match *d {
            SchedDelta::StageObserved {
                job, app, nominal, ..
            } => {
                *self.truth.entry(job).or_insert(0.0) += nominal.as_secs_f64();
                self.apps.insert(job, app);
            }
            SchedDelta::JobArrived { job, .. } => self.arrivals.push(job),
            SchedDelta::JobCompleted { job } => {
                let truth = self.truth.remove(&job).unwrap_or(0.0);
                if let (Some(pred), Some(app)) = (self.pred.remove(&job), self.apps.remove(&job)) {
                    if truth > 0.0 {
                        self.samples.push(Sample { app, pred, truth });
                    }
                }
            }
            _ => {}
        }
        // Wrappers must forward the delta stream (DESIGN.md §7.4).
        self.inner.on_delta(d);
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Preference {
        // Record prior predictions for this batch's arrivals against the
        // store state *before* it absorbs the batch's observations.
        for id in std::mem::take(&mut self.arrivals) {
            let Some(job) = ctx.job(id) else { continue };
            let pred = match self.inner.profile_store().profile(job.app()) {
                Some(p) => remaining_work_with(p, job, &Evidence::new(), true, INTERVAL_TAIL_MASS)
                    .expected(1.0),
                None => 0.0,
            };
            self.pred.insert(id, pred);
        }
        self.inner.schedule(ctx)
    }

    fn reset(&mut self) {
        self.truth.clear();
        self.pred.clear();
        self.arrivals.clear();
        self.samples.clear();
        self.apps.clear();
        self.inner.reset();
    }

    // Wrappers must forward the telemetry hooks (DESIGN.md §11): without
    // these the probed `--trace` run would lose LLMSched's provenance.
    fn set_telemetry(&mut self, enabled: bool) {
        self.inner.set_telemetry(enabled);
    }

    fn drain_provenance(&mut self, out: &mut Vec<llmsched_sim::telemetry::DecisionRecord>) {
        self.inner.drain_provenance(out);
    }

    // Forwarded so capacity-aware elision sees the wrapped policy's real
    // contract; the probe itself only records, never decides.
    fn is_work_conserving(&self) -> bool {
        self.inner.is_work_conserving()
    }
}

/// Calibration *bias* of completion-order thirds:
/// `|Σ predicted / Σ realized − 1|` per bucket. Bias isolates how well
/// the profile tracks the live distribution — per-job relative errors
/// would conflate it with the apps' intrinsic duration variance, which no
/// profile can remove.
fn thirds(samples: &[&Sample]) -> [f64; 3] {
    let n = samples.len();
    let mut out = [0.0; 3];
    if n == 0 {
        return out;
    }
    for (b, chunk) in [
        &samples[..n / 3],
        &samples[n / 3..2 * n / 3],
        &samples[2 * n / 3..],
    ]
    .iter()
    .enumerate()
    {
        let pred: f64 = chunk.iter().map(|s| s.pred).sum();
        let truth: f64 = chunk.iter().map(|s| s.truth).sum();
        out[b] = if truth > 0.0 {
            (pred / truth - 1.0).abs()
        } else {
            0.0
        };
    }
    out
}

struct RunOut {
    avg_jct: f64,
    calib_thirds: [f64; 3],
    holdout_thirds: [f64; 3],
    final_version: u64,
}

fn store_for(
    templates: &llmsched_dag::template::TemplateSet,
    corpus: &[llmsched_dag::job::JobSpec],
    online: bool,
) -> ProfileStore {
    ProfileStore::train(
        templates,
        corpus,
        ProfileStoreConfig {
            update: if online {
                ProfileUpdate::PerCompletion
            } else {
                ProfileUpdate::Frozen
            },
            window_cap: 128,
            ..ProfileStoreConfig::default()
        },
    )
}

fn run_one(
    w: Workload,
    corpus: &[llmsched_dag::job::JobSpec],
    online: bool,
    probe_app: AppId,
) -> RunOut {
    let store = store_for(&w.templates, corpus, online);
    let sched = LlmSched::with_store(store, LlmSchedConfig::default());
    let mut probe = CalibProbe::new(sched);
    let cfg = w.kind.default_cluster();
    let r = simulate(&cfg, &w.templates, w.jobs, &mut probe);
    assert_eq!(r.incomplete, 0, "run stranded jobs");
    let all: Vec<&Sample> = probe.samples.iter().collect();
    let hold: Vec<&Sample> = probe
        .samples
        .iter()
        .filter(|s| s.app == probe_app)
        .collect();
    RunOut {
        avg_jct: r.avg_jct_secs(),
        calib_thirds: thirds(&all),
        holdout_thirds: thirds(&hold),
        final_version: probe.inner.profile_store().version(probe_app).0,
    }
}

fn drift_workload(n: usize, seed: u64) -> Workload {
    // One app shifts to 0.3x a third of the way in: differential drift is
    // what flips cross-app SRTF ordering (uniform drift is scale
    // invariant), and a speed-up makes the frozen profiler *overestimate*
    // — it keeps scheduling now-short jobs late.
    let at = n as f64 / 0.9 / 3.0;
    let drift = DriftSpec::new(at, 0.3, vec![AppKind::CodeGeneration]);
    generate_drift_workload(WorkloadKind::ChainLike, n, 0.9, seed, &drift)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/drift_adapt.json".to_string());
    let trace: Option<String> = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "results/drift_trace".to_string())
    });
    let timeseries = args.iter().any(|a| a == "--timeseries");

    let seeds: &[u64] = if quick { &[11] } else { &[11, 29, 47] };
    let n_drift = if quick { 160 } else { 400 };
    let n_cold = if quick { 140 } else { 300 };
    let drifted_app = AppKind::CodeGeneration.app_id();

    let mut json = String::from("{\n  \"bench\": \"drift_adapt\",\n  \"scenarios\": {\n");

    // ---- Scenario 1: mid-run drift ------------------------------------
    println!("== drift: Chain-like, code_generation shifts to 0.3x at t = T/3 ==");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>26}",
        "seed", "mode", "avg JCT (s)", "snapshots", "calib err (thirds)"
    );
    let corpus = training_jobs(
        &WorkloadKind::ChainLike.apps(),
        if quick { 60 } else { 100 },
        1,
    );
    let (mut frozen_sum, mut online_sum) = (0.0, 0.0);
    let mut drift_rows = String::new();
    let drift_points: Vec<(u64, bool)> = seeds
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let drift_results = llmsched_bench::sweep::map(&drift_points, |&(seed, online)| {
        run_one(drift_workload(n_drift, seed), &corpus, online, drifted_app)
    });
    for (&(seed, online), r) in drift_points.iter().zip(&drift_results) {
        {
            let mode = if online { "online" } else { "frozen" };
            println!(
                "{:>6} {:>10} {:>14.2} {:>14} {:>26}",
                seed,
                mode,
                r.avg_jct,
                r.final_version,
                format!(
                    "{:.3}/{:.3}/{:.3}",
                    r.calib_thirds[0], r.calib_thirds[1], r.calib_thirds[2]
                ),
            );
            if online {
                online_sum += r.avg_jct;
            } else {
                frozen_sum += r.avg_jct;
            }
            let _ = writeln!(
                drift_rows,
                "      {{\"seed\": {seed}, \"mode\": \"{mode}\", \"avg_jct_secs\": {:.4}, \
                 \"calib_thirds\": [{:.4}, {:.4}, {:.4}]}},",
                r.avg_jct, r.calib_thirds[0], r.calib_thirds[1], r.calib_thirds[2]
            );
        }
    }
    let (frozen_jct, online_jct) = (
        frozen_sum / seeds.len() as f64,
        online_sum / seeds.len() as f64,
    );
    let gain = (frozen_jct - online_jct) / frozen_jct * 100.0;
    println!(
        "mean avg JCT: frozen {frozen_jct:.2}s, online {online_jct:.2}s ({gain:+.1}% improvement)\n"
    );
    let _ = writeln!(
        json,
        "    \"drift\": {{\n      \"frozen_mean_jct\": {frozen_jct:.4},\n      \
         \"online_mean_jct\": {online_jct:.4},\n      \"runs\": [\n{}      ]}},",
        drift_rows.trim_end_matches(",\n").to_string() + "\n"
    );

    // ---- Scenario 2: cold start ---------------------------------------
    println!("== cold start: Mixed, code_generation has zero training history ==");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>26}",
        "seed", "mode", "avg JCT (s)", "snapshots", "holdout err (thirds)"
    );
    let cold_kinds = cold_start_training_kinds(WorkloadKind::Mixed, &[AppKind::CodeGeneration]);
    let cold_corpus = training_jobs(&cold_kinds, if quick { 60 } else { 100 }, 1);
    let mut cold_first = 0.0;
    let mut cold_last = 0.0;
    let mut cold_rows = String::new();
    let cold_points: Vec<(u64, bool)> = seeds
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let cold_results = llmsched_bench::sweep::map(&cold_points, |&(seed, online)| {
        let w = generate_workload(WorkloadKind::Mixed, n_cold, 0.9, seed);
        run_one(w, &cold_corpus, online, drifted_app)
    });
    for (&(seed, online), r) in cold_points.iter().zip(&cold_results) {
        {
            let mode = if online { "online" } else { "frozen" };
            println!(
                "{:>6} {:>10} {:>14.2} {:>14} {:>26}",
                seed,
                mode,
                r.avg_jct,
                r.final_version,
                format!(
                    "{:.3}/{:.3}/{:.3}",
                    r.holdout_thirds[0], r.holdout_thirds[1], r.holdout_thirds[2]
                ),
            );
            if online {
                cold_first += r.holdout_thirds[0];
                cold_last += r.holdout_thirds[2];
                assert!(
                    r.final_version > 0,
                    "cold-start app must bootstrap a profile online"
                );
            } else {
                assert_eq!(r.final_version, 0, "frozen must never learn the holdout");
            }
            let _ = writeln!(
                cold_rows,
                "      {{\"seed\": {seed}, \"mode\": \"{mode}\", \"avg_jct_secs\": {:.4}, \
                 \"holdout_calib_thirds\": [{:.4}, {:.4}, {:.4}]}},",
                r.avg_jct, r.holdout_thirds[0], r.holdout_thirds[1], r.holdout_thirds[2]
            );
        }
    }
    let (cold_first, cold_last) = (
        cold_first / seeds.len() as f64,
        cold_last / seeds.len() as f64,
    );
    println!(
        "cold-start holdout calibration error: first third {cold_first:.3} -> last third {cold_last:.3}\n"
    );
    let _ = writeln!(
        json,
        "    \"cold_start\": {{\n      \"holdout_err_first_third\": {cold_first:.4},\n      \
         \"holdout_err_last_third\": {cold_last:.4},\n      \"runs\": [\n{}      ]}}\n  }}\n}}",
        cold_rows.trim_end_matches(",\n").to_string() + "\n"
    );

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, &json).expect("write drift_adapt.json");
    println!("wrote {out}");

    // Probed online drift run: the trace where decision provenance earns
    // its keep — evidence masks and profile versions advance mid-run as
    // the online store re-learns the drifted app.
    if trace.is_some() || timeseries {
        let w = drift_workload(n_drift, seeds[0]);
        let store = store_for(&w.templates, &corpus, true);
        let sched = LlmSched::with_store(store, LlmSchedConfig::default());
        let mut probe = CalibProbe::new(sched);
        let mut rec = TraceRecorder::new(TraceConfig {
            window: Some(WindowConfig::new(
                SimDuration::from_secs(30),
                SimDuration::from_secs(60),
            )),
        });
        let cfg = w.kind.default_cluster();
        let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut probe, &mut rec);
        assert_eq!(r.incomplete, 0, "probed run stranded jobs");
        println!(
            "probed online drift run: {} probe events",
            rec.events().len()
        );
        if timeseries {
            let ts = r
                .timeseries
                .as_ref()
                .expect("probed run aggregates windows");
            llmsched_bench::print_timeseries(ts);
        }
        if let Some(prefix) = &trace {
            llmsched_bench::export_trace_or_die(prefix, &rec, &r, true);
        }
    }

    if check {
        let mut ok = true;
        if online_jct >= frozen_jct {
            eprintln!(
                "FAIL: online profiling must improve drift-mix avg JCT \
                 (frozen {frozen_jct:.2}s vs online {online_jct:.2}s)"
            );
            ok = false;
        }
        if cold_last >= cold_first {
            eprintln!(
                "FAIL: cold-start calibration error must fall over the run \
                 ({cold_first:.3} -> {cold_last:.3})"
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed: online beats frozen under drift; cold-start calibration converges");
    }
}

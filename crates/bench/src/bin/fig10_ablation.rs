//! **Fig. 10** — ablation study: *LLMSched w/o BN* (static historical
//! means instead of posterior updates) and *LLMSched w/o uncertainty*
//! (pure SRTF, no exploration list) versus full LLMSched, normalized, on
//! all four workloads.
//!
//! Paper shape: w/o BN is 5–20% worse, w/o uncertainty 12–21% worse;
//! on Mixed, w/o BN outperforms w/o uncertainty.
//!
//! Also includes the extra design-choice ablations called out in
//! DESIGN.md: MI estimator (exact-joint vs pairwise-sum) and BN structure
//! learner (hill-climb vs Chow-Liu).
//!
//! Writes `results/fig10.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig10_ablation [--quick]`

use llmsched_bench::{run_policy, write_csv, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_core::prelude::*;
use llmsched_workloads::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_jobs = if quick { 120 } else { 300 };
    let per_app = if quick {
        150
    } else {
        llmsched_bench::roster::DEFAULT_TRAINING_PER_APP
    };
    let art = TrainedArtifacts::train(per_app, 1);

    let mut table = Table::new(vec!["workload", "variant", "avg_jct_s", "norm_jct"]);
    println!("Fig. 10 — ablation (normalized to full LLMSched):");
    for kind in WorkloadKind::ALL {
        let exp = ExperimentConfig {
            n_jobs,
            ..ExperimentConfig::paper_default(kind, 42)
        };
        let variants = [
            Policy::LlmSched,
            Policy::LlmSchedNoBn,
            Policy::LlmSchedNoUncertainty,
        ];
        let jcts =
            llmsched_bench::sweep::map(&variants, |&p| run_policy(&art, p, &exp).avg_jct_secs());
        let (full, no_bn, no_unc) = (jcts[0], jcts[1], jcts[2]);
        println!(
            "  {:<11} full {:>7.1}s | w/o BN {:>7.1}s ({:+.0}%) | w/o uncertainty {:>7.1}s ({:+.0}%)",
            kind.name(),
            full,
            no_bn,
            (no_bn / full - 1.0) * 100.0,
            no_unc,
            (no_unc / full - 1.0) * 100.0,
        );
        for (name, v) in [
            ("LLMSched", full),
            ("LLMSched w/o BN", no_bn),
            ("LLMSched w/o uncertainty", no_unc),
        ] {
            table.row(vec![
                kind.name().to_string(),
                name.to_string(),
                format!("{v:.2}"),
                format!("{:.4}", v / full),
            ]);
        }
    }
    println!("wrote {}", write_csv(&table, "fig10").display());

    // --- Extra design-choice ablations (DESIGN.md §4) -------------------
    println!("\nMI estimator ablation (Mixed):");
    for (label, mi) in [
        (
            "exact joint (cap 3)",
            MiEstimator::ExactJoint { max_joint: 3 },
        ),
        (
            "exact joint (cap 2)",
            MiEstimator::ExactJoint { max_joint: 2 },
        ),
        ("pairwise sum", MiEstimator::PairwiseSum),
    ] {
        let exp = ExperimentConfig {
            n_jobs,
            llmsched: Some(LlmSchedConfig {
                mi,
                ..Default::default()
            }),
            ..ExperimentConfig::paper_default(WorkloadKind::Mixed, 42)
        };
        let r = run_policy(&art, Policy::LlmSched, &exp);
        println!(
            "  {label:<22} avg JCT {:>7.1}s, overhead {:>6.3} ms",
            r.avg_jct_secs(),
            r.sched_overhead_ms()
        );
    }

    println!("\nBN structure-learner ablation (Mixed):");
    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, per_app, 1);
    for (label, learner) in [
        ("hill-climb BIC", StructureLearner::HillClimb),
        ("Chow-Liu tree", StructureLearner::ChowLiu),
    ] {
        let cfg = ProfilerConfig {
            learner,
            ..Default::default()
        };
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let mut sched = LlmSched::new(profiler, LlmSchedConfig::default());
        let w = generate_workload(WorkloadKind::Mixed, n_jobs, 0.9, 42);
        let r = llmsched_sim::engine::simulate(
            &WorkloadKind::Mixed.default_cluster(),
            &w.templates,
            w.jobs,
            &mut sched,
        );
        println!("  {label:<22} avg JCT {:>7.1}s", r.avg_jct_secs());
    }
}

//! Cluster-load calibration helper (not a paper figure).
//!
//! Runs FCFS on each workload mix at the paper's default parameters and
//! reports executor utilization, so the per-mix executor counts in
//! `WorkloadKind::default_cluster` can be tuned to the paper's ~85%
//! moderate-load setting (§V, *Parameter setting*).
//!
//! Usage: `cargo run --release -p llmsched-bench --bin calibrate [n_jobs]`

use llmsched_bench::{run_policy, ExperimentConfig, Policy, Table, TrainedArtifacts};
use llmsched_workloads::prelude::WorkloadKind;

fn main() {
    let n_jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let art = TrainedArtifacts::train(llmsched_bench::roster::DEFAULT_TRAINING_PER_APP, 1);
    let mut table = Table::new(vec![
        "workload",
        "policy",
        "avg_jct_s",
        "makespan_s",
        "reg_util",
        "llm_slot_util",
        "llm_active",
        "incomplete",
    ]);
    for kind in WorkloadKind::ALL {
        for policy in [
            Policy::Fcfs,
            Policy::Sjf,
            Policy::Fair,
            Policy::Argus,
            Policy::Decima,
            Policy::Carbyne,
            Policy::LlmSchedNoUncertainty,
            Policy::LlmSchedNoBn,
            Policy::LlmSched,
        ] {
            let exp = ExperimentConfig {
                n_jobs,
                ..ExperimentConfig::paper_default(kind, 42)
            };
            let r = run_policy(&art, policy, &exp);
            table.row(vec![
                kind.name().to_string(),
                policy.name().to_string(),
                format!("{:.1}", r.avg_jct_secs()),
                format!("{:.0}", r.makespan.as_secs_f64()),
                format!("{:.2}", r.utilization.regular_busy_frac),
                format!("{:.2}", r.utilization.llm_slot_frac),
                format!("{:.2}", r.utilization.llm_active_frac),
                r.incomplete.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

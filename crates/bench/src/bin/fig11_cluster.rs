//! **Fig. 11** (extension) — cluster-scale serving sweep: replica-pool
//! shapes × routing policies × arrival processes, on both the aggregated
//! heterogeneous cluster backend and the disaggregated prefill/decode
//! backend.
//!
//! Every sweep point runs the same FCFS policy on the same seeded
//! workload, so differences isolate the *serving substrate*: how much
//! tail latency a routing policy buys under bursty (MMPP) and diurnal
//! arrivals, and what the prefill/decode split costs or saves per shape.
//! Points run on parallel threads (one per configuration).
//!
//! Writes `results/fig11_cluster.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig11_cluster
//!         [--quick] [--jobs N] [--slo SECS] [--trace <prefix>]
//!         [--timeseries]`
//!
//! `--trace` re-runs the first sweep point with a recording probe and
//! exports `<prefix>.jsonl` + `<prefix>.trace.json` (Perfetto-loadable,
//! with routing/batch-occupancy tracks); `--timeseries` prints its
//! windowed tail-latency/SLO trajectory.

use llmsched_bench::{jct_summary_cells, write_csv, Table, JCT_SUMMARY_HEADER};
use llmsched_dag::time::SimDuration;
use llmsched_schedulers::prelude::Fcfs;
use llmsched_sim::prelude::*;
use llmsched_workloads::prelude::*;

/// A named replica-pool shape (decode groups only; disagg runs prepend a
/// prefill pool).
struct Shape {
    name: &'static str,
    groups: Vec<ReplicaGroup>,
}

/// The reference curve slowed by `factor` — an older GPU SKU.
fn slowed(factor: u64) -> LatencyProfile {
    let points = LatencyProfile::default()
        .points()
        .iter()
        .map(|&(b, l)| (b, l * factor))
        .collect();
    LatencyProfile::new(points).expect("scaled curve stays monotone")
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "2x8",
            groups: vec![ReplicaGroup::new("pool", 2, 8, LatencyProfile::default())],
        },
        Shape {
            name: "4x4",
            groups: vec![ReplicaGroup::new("pool", 4, 4, LatencyProfile::default())],
        },
        Shape {
            name: "hetero",
            groups: vec![
                ReplicaGroup::new("fast", 1, 8, LatencyProfile::default()),
                ReplicaGroup::new("slow", 3, 4, slowed(2)),
            ],
        },
    ]
}

/// One sweep point: everything needed to build and run a simulation.
struct Point {
    shape: &'static str,
    routing: RoutingPolicy,
    arrivals: ArrivalProcess,
    mode: EngineMode,
    spec: ClusterSpec,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .skip_while(|a| *a != name)
            .nth(1)
            .and_then(|s| s.parse::<f64>().ok())
    };
    let n_jobs = flag("--jobs")
        .map(|v| v as usize)
        .unwrap_or(if quick { 40 } else { 150 });
    let slo = SimDuration::from_secs_f64(flag("--slo").unwrap_or(60.0));
    let trace: Option<String> = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "results/fig11_trace".to_string())
    });
    let timeseries = args.iter().any(|a| a == "--timeseries");
    let seed = 42u64;

    let arrival_processes = [ArrivalProcess::bursty(0.9), ArrivalProcess::diurnal(0.9)];

    // Build the cartesian sweep: shape × routing × arrivals × backend.
    let mut points = Vec::new();
    for shape in shapes() {
        for routing in RoutingPolicy::ALL {
            for arrivals in arrival_processes {
                let agg = ClusterSpec::new(shape.groups.clone(), routing);
                points.push(Point {
                    shape: shape.name,
                    routing,
                    arrivals,
                    mode: EngineMode::Cluster,
                    spec: agg,
                });
                let mut groups = vec![ReplicaGroup::new(
                    "prefill",
                    1,
                    1,
                    LatencyProfile::default(),
                )];
                groups.extend(shape.groups.clone());
                let mut disagg = ClusterSpec::new(groups, routing);
                disagg.disagg = Some(DisaggSpec::with_defaults(0));
                points.push(Point {
                    shape: shape.name,
                    routing,
                    arrivals,
                    mode: EngineMode::Disagg,
                    spec: disagg,
                });
            }
        }
    }

    println!(
        "fig11_cluster: {} sweep points ({} jobs each, SLO {}s), running on parallel threads",
        points.len(),
        n_jobs,
        slo.as_secs_f64()
    );

    // Bounded worker pool; results come back in sweep order.
    let results: Vec<SimResult> = llmsched_bench::sweep::map(&points, |p| {
        let w = generate_workload_with(WorkloadKind::Mixed, n_jobs, &p.arrivals, seed);
        let cfg = ClusterConfig {
            regular_executors: 4,
            mode: p.mode,
            spec: Some(p.spec.clone()),
            ..ClusterConfig::default()
        };
        simulate(&cfg, &w.templates, w.jobs, &mut Fcfs::new())
    });

    let mut header = vec!["shape", "routing", "arrivals", "backend"];
    header.extend(JCT_SUMMARY_HEADER);
    header.push("events");
    let mut table = Table::new(header);
    for (p, r) in points.iter().zip(&results) {
        assert_eq!(r.incomplete, 0, "{} {} stranded jobs", p.shape, r.backend);
        let mut row = vec![
            p.shape.to_string(),
            p.routing.name().to_string(),
            p.arrivals.name().to_string(),
            r.backend.clone(),
        ];
        row.extend(jct_summary_cells(r, slo));
        row.push(r.events.to_string());
        table.row(row);
    }
    println!("{}", table.render());

    // Headline: best routing policy per (shape, arrivals) on p99.
    let p99s: Vec<f64> = results.iter().map(|r| r.jct_percentiles().p99).collect();
    for shape in shapes() {
        for arrivals in arrival_processes {
            let (p, r, p99) = points
                .iter()
                .zip(results.iter().zip(&p99s))
                .filter(|(p, _)| p.shape == shape.name && p.arrivals == arrivals)
                .map(|(p, (r, &p99))| (p, r, p99))
                .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite p99"))
                .expect("non-empty sweep");
            println!(
                "best p99 on {}/{}: {} + {} ({:.1}s)",
                shape.name,
                arrivals.name(),
                r.backend,
                p.routing.name(),
                p99
            );
        }
    }

    let path = write_csv(&table, "fig11_cluster");
    println!("wrote {}", path.display());

    // Probed re-run of the first sweep point (routing + batch-occupancy
    // tracks are the cluster-specific payoff; FCFS keeps no posterior
    // state, so no provenance records are expected).
    if trace.is_some() || timeseries {
        let p = &points[0];
        let mut rec = TraceRecorder::new(TraceConfig {
            window: Some(WindowConfig::new(SimDuration::from_secs(30), slo)),
        });
        let w = generate_workload_with(WorkloadKind::Mixed, n_jobs, &p.arrivals, seed);
        let cfg = ClusterConfig {
            regular_executors: 4,
            mode: p.mode,
            spec: Some(p.spec.clone()),
            ..ClusterConfig::default()
        };
        let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut Fcfs::new(), &mut rec);
        assert_eq!(r.incomplete, 0, "probed run stranded jobs");
        println!(
            "probed run ({}/{}/{}): {} probe events",
            p.shape,
            p.routing.name(),
            p.arrivals.name(),
            rec.events().len()
        );
        if timeseries {
            let ts = r
                .timeseries
                .as_ref()
                .expect("probed run aggregates windows");
            llmsched_bench::print_timeseries(ts);
        }
        if let Some(prefix) = &trace {
            llmsched_bench::export_trace_or_die(prefix, &rec, &r, false);
        }
    }
}

//! **Scale throughput** — the repo's performance trajectory: how many jobs
//! per wall-clock second the simulator + scheduler pipeline sustains as the
//! workload grows to production-ish sizes, and what the delta-driven
//! incremental scheduling core buys over the rebuild-per-call reference
//! path (bit-identical schedules, very different overhead).
//!
//! Sweeps 10k/50k/100k-job Mixed workloads under LLMSched across the
//! analytic, cluster and disaggregated backends (incremental path), plus
//! rebuild-path reference runs on the analytic backend at 10k/50k for the
//! speedup ratio and partitioned-engine runs (`path: "parallel"`, 4
//! partitions) on every backend for the parallel-vs-sequential ratio.
//! Writes `BENCH_scale.json` at the repo root, including the host's
//! `hw_threads` — partitioned speedup is meaningless without it (a
//! 1-hardware-thread container time-slices the shard workers, so the
//! parallel rows measure barrier overhead, not speedup).
//!
//! Usage:
//!   cargo run --release -p llmsched-bench --bin scale_throughput
//!     [--quick]            # one small sweep (CI)
//!     [--floor <jobs/s>]   # exit non-zero if any incremental run
//!                          # simulates fewer jobs/sec than this
//!     [--check]            # exit non-zero if disagg throughput decays
//!                          # from 10k to 50k jobs, a partitioned run
//!                          # falls below 0.9x its sequential twin, or
//!                          # any row spends more than the ceiling of
//!                          # its wall clock inside the scheduler
//!     [--out <path>]       # default BENCH_scale.json
//!     [--trace <prefix>]   # also run one probed sweep point and export
//!                          # <prefix>.jsonl + <prefix>.trace.json
//!                          # (Perfetto-loadable); exit non-zero if the
//!                          # exports fail validation
//!     [--timeseries]       # print the probed run's windowed time-series
//!     [--no-coalescing]    # A/B switch: disable scheduler invocation
//!                          # coalescing (schedules stay bit-identical)

use std::fmt::Write as _;
use std::time::Instant;

use llmsched_bench::{ExperimentConfig, Policy, TrainedArtifacts};
use llmsched_core::prelude::LlmSchedConfig;
use llmsched_dag::time::SimDuration;
use llmsched_sim::engine::{ClusterConfig, EngineMode};
use llmsched_sim::par::{Parallelism, ShardStats};
use llmsched_sim::telemetry::{TraceConfig, TraceRecorder, WindowConfig};
use llmsched_workloads::prelude::WorkloadKind;

/// Cluster scale factor. The Mixed default cluster is tuned for the
/// paper's 300-job runs at λ = 0.9 jobs/s, which by Little's law keeps
/// only ~15 jobs in flight — far too few to stress a scheduler. The
/// scale sweep multiplies executors and raises the arrival rate,
/// pushing the steady-state active set into the hundreds: the regime
/// where per-invocation scheduler cost actually shows. The cluster is
/// scaled *more* than the arrival rate so the queue stays stable — in
/// an overloaded system the active set grows with the job count and
/// every run (most of all the rebuild reference) turns quadratic.
const CLUSTER_SCALE: usize = 48;

/// Arrival rate: high enough for hundreds of jobs in flight, safely
/// below the scaled service capacity.
const LAMBDA: f64 = 24.0;

/// Shard count of the `path: "parallel"` rows (matches the partitioned
/// engine's reference configuration; clamped to the executor count).
const PARALLEL_PARTS: usize = 4;

/// How one sweep point exercises the engine + scheduler pipeline.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Delta-driven scheduling, sequential engine (the default).
    Incremental,
    /// Rebuild-per-call scheduling reference (quadratic blow-up).
    Rebuild,
    /// Delta-driven scheduling on the partitioned engine.
    Parallel,
}

impl Path {
    fn name(self) -> &'static str {
        match self {
            Path::Incremental => "incremental",
            Path::Rebuild => "rebuild",
            Path::Parallel => "parallel",
        }
    }
}

struct Run {
    jobs: usize,
    backend: String,
    path: &'static str,
    partitions: usize,
    wall_secs: f64,
    jobs_per_sec: f64,
    events: u64,
    sched_calls: u64,
    /// Decision points skipped by scheduler invocation coalescing
    /// (`sched_calls + coalesced_sched_calls + elided_sched_calls` is the
    /// total).
    coalesced_sched_calls: u64,
    /// Decision points elided by the capacity-aware check (no free slot
    /// of any ready class; the sweep runs LLMSched in work-conserving
    /// mode, so elision is live on these rows).
    elided_sched_calls: u64,
    /// Total scheduler wall clock over run wall clock — the Amdahl
    /// denominator the elision work attacks.
    sched_time_fraction: f64,
    /// Scheduler barriers the partitioned engine took (0 on sequential
    /// rows). The conservative-window path's whole job is keeping this
    /// far below the event count.
    barriers: u64,
    /// Conservative lookahead windows taken (0 on sequential rows).
    windows: u64,
    sched_mean_ms: f64,
    sched_p50_ms: f64,
    sched_p99_ms: f64,
    avg_jct_secs: f64,
    /// Per-shard work breakdown (parallel rows only; empty otherwise).
    shards: Vec<ShardStats>,
}

fn scaled_cluster(mode: EngineMode) -> ClusterConfig {
    let base = WorkloadKind::Mixed.default_cluster();
    // The derived disagg layout pins a single prefill replica — a
    // bottleneck that overloads at this arrival rate. Scale the prefill
    // pool with the cluster.
    let spec = (mode == EngineMode::Disagg).then(|| {
        let mut s = llmsched_sim::prelude::ClusterSpec::disaggregated(
            base.llm_executors * CLUSTER_SCALE,
            base.max_batch,
            base.latency.clone(),
        );
        s.groups[0].replicas = CLUSTER_SCALE;
        s
    });
    ClusterConfig {
        regular_executors: base.regular_executors * CLUSTER_SCALE,
        llm_executors: base.llm_executors * CLUSTER_SCALE,
        mode,
        spec,
        ..base
    }
}

fn exp_for(n_jobs: usize, mode: EngineMode, path: Path) -> ExperimentConfig {
    let mut cluster = scaled_cluster(mode);
    if path == Path::Parallel {
        cluster.parallelism = Parallelism::Partitioned(PARALLEL_PARTS);
    }
    if std::env::args().any(|a| a == "--no-coalescing") {
        cluster.coalescing = false;
    }
    ExperimentConfig {
        n_jobs,
        mode,
        lambda: LAMBDA,
        cluster: Some(cluster),
        rebuild: path == Path::Rebuild,
        // Work-conserving mode opts LLMSched into capacity-aware
        // decision-point elision (on the partitioned path: elided
        // *barriers*). Off by default in golden runs because it moves
        // the ε-draw stream; the throughput sweep is where it earns its
        // keep.
        llmsched: Some(LlmSchedConfig {
            work_conserving: true,
            ..LlmSchedConfig::default()
        }),
        ..ExperimentConfig::paper_default(WorkloadKind::Mixed, 42)
    }
}

fn run_one(art: &TrainedArtifacts, n_jobs: usize, mode: EngineMode, path: Path) -> Run {
    let exp = exp_for(n_jobs, mode, path);
    let start = Instant::now();
    let r = llmsched_bench::run_policy(art, Policy::LlmSched, &exp);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(r.incomplete, 0, "scale run stranded jobs");
    if path == Path::Parallel {
        assert!(r.par.is_some(), "parallel rows must run partitioned");
    }
    let p = r.sched_overhead_percentiles();
    Run {
        jobs: n_jobs,
        backend: r.backend.clone(),
        path: path.name(),
        partitions: r.par.as_ref().map_or(0, |s| s.partitions),
        wall_secs: wall,
        jobs_per_sec: n_jobs as f64 / wall,
        events: r.events,
        sched_calls: r.sched_calls,
        coalesced_sched_calls: r.sched_skipped,
        elided_sched_calls: r.sched_elided,
        sched_time_fraction: r.sched_wall.as_secs_f64() / wall,
        barriers: r.par.as_ref().map_or(0, |s| s.barriers),
        windows: r.par.as_ref().map_or(0, |s| s.windows),
        sched_mean_ms: r.sched_overhead_ms(),
        sched_p50_ms: p.p50_ms,
        sched_p99_ms: p.p99_ms,
        avg_jct_secs: r.avg_jct_secs(),
        shards: r.par.map_or_else(Vec::new, |s| s.per_shard),
    }
}

fn to_json(
    runs: &[Run],
    quick: bool,
    speedups: &[(usize, f64)],
    par_speedups: &[(usize, f64)],
) -> String {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale_throughput\",");
    let _ = writeln!(s, "  \"policy\": \"LLMSched\",");
    let _ = writeln!(s, "  \"workload\": \"Mixed\",");
    let _ = writeln!(s, "  \"cluster_scale\": {CLUSTER_SCALE},");
    let _ = writeln!(s, "  \"hw_threads\": {hw},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"jobs\": {}, \"backend\": \"{}\", \"path\": \"{}\", \
             \"partitions\": {}, \
             \"wall_secs\": {:.3}, \"jobs_per_sec\": {:.1}, \"events\": {}, \
             \"sched_calls\": {}, \"coalesced_sched_calls\": {}, \
             \"elided_sched_calls\": {}, \"sched_time_fraction\": {:.4}, \
             \"barriers\": {}, \"windows\": {}, \"sched_mean_ms\": {:.4}, \
             \"sched_p50_ms\": {:.4}, \"sched_p99_ms\": {:.4}, \
             \"avg_jct_secs\": {:.3}}}",
            r.jobs,
            r.backend,
            r.path,
            r.partitions,
            r.wall_secs,
            r.jobs_per_sec,
            r.events,
            r.sched_calls,
            r.coalesced_sched_calls,
            r.elided_sched_calls,
            r.sched_time_fraction,
            r.barriers,
            r.windows,
            r.sched_mean_ms,
            r.sched_p50_ms,
            r.sched_p99_ms,
            r.avg_jct_secs,
        );
        if !r.shards.is_empty() {
            s.truncate(s.len() - 1); // reopen the row object
            s.push_str(", \"per_shard\": [");
            for (j, sh) in r.shards.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"batches\": {}, \"threaded_batches\": {}, \"events\": {}, \
                     \"busy_ms\": {:.3}}}",
                    if j > 0 { ", " } else { "" },
                    sh.batches,
                    sh.threaded_batches,
                    sh.events,
                    sh.busy.as_secs_f64() * 1e3,
                );
            }
            s.push_str("]}");
        }
        s.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedup_incremental_vs_rebuild\": {");
    for (i, (jobs, x)) in speedups.iter().enumerate() {
        let _ = write!(s, "{}\"{jobs}\": {x:.2}", if i > 0 { ", " } else { "" });
    }
    s.push_str("},\n");
    s.push_str("  \"speedup_parallel_vs_sequential\": {");
    for (i, (jobs, x)) in par_speedups.iter().enumerate() {
        let _ = write!(s, "{}\"{jobs}\": {x:.2}", if i > 0 { ", " } else { "" });
    }
    s.push_str("}\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let floor: Option<f64> = flag("--floor").map(|v| v.parse().expect("--floor takes a number"));
    let check = args.iter().any(|a| a == "--check");
    let out = flag("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let trace: Option<String> = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "results/scale_trace".to_string())
    });
    let timeseries = args.iter().any(|a| a == "--timeseries");
    // Tuning escape hatch: one incremental sweep at a custom job count.
    let jobs_override: Option<usize> =
        flag("--jobs").map(|v| v.parse().expect("--jobs takes a count"));

    let art = TrainedArtifacts::train(if quick { 100 } else { 200 }, 1);
    let override_sweep = [jobs_override.unwrap_or(0)];
    let sweep: &[usize] = match jobs_override {
        Some(_) => &override_sweep,
        None if quick => &[2_000],
        None => &[10_000, 50_000, 100_000],
    };
    // Every backend even in quick mode: the parallel-vs-sequential gate
    // (`--check`) must cover the cluster and disagg lookahead paths in CI,
    // not just the analytic one.
    let backends: &[EngineMode] = &[
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    // Rebuild reference runs (analytic): the 50k entry is the acceptance
    // ratio; 100k rebuild is omitted — it's the quadratic blow-up the
    // incremental core exists to avoid.
    let rebuild_sweep: &[usize] = match jobs_override {
        Some(_) => &[],
        None if quick => &[2_000],
        None => &[10_000, 50_000],
    };

    println!(
        "{:>8} {:>22} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "jobs",
        "backend",
        "path",
        "wall s",
        "jobs/s",
        "mean ms",
        "p50 ms",
        "p99 ms",
        "sched%",
        "elided"
    );
    fn record(runs: &mut Vec<Run>, r: Run) {
        println!(
            "{:>8} {:>22} {:>12} {:>10.2} {:>10.1} {:>10.4} {:>10.4} {:>10.4} {:>8.1} {:>10}",
            r.jobs,
            r.backend,
            r.path,
            r.wall_secs,
            r.jobs_per_sec,
            r.sched_mean_ms,
            r.sched_p50_ms,
            r.sched_p99_ms,
            r.sched_time_fraction * 100.0,
            r.elided_sched_calls
        );
        if !r.shards.is_empty() {
            let cells: Vec<String> = r
                .shards
                .iter()
                .map(|s| {
                    format!(
                        "{} batches ({} threaded, {} ev, {:.1}ms busy)",
                        s.batches,
                        s.threaded_batches,
                        s.events,
                        s.busy.as_secs_f64() * 1e3
                    )
                })
                .collect();
            println!("{:>8} shards: {}", "", cells.join(" | "));
        }
        runs.push(r);
    }
    let mut runs: Vec<Run> = Vec::new();
    for &n in sweep {
        for &mode in backends {
            record(&mut runs, run_one(&art, n, mode, Path::Incremental));
            record(&mut runs, run_one(&art, n, mode, Path::Parallel));
        }
    }
    for &n in rebuild_sweep {
        record(
            &mut runs,
            run_one(&art, n, EngineMode::Analytic, Path::Rebuild),
        );
    }

    let speedups: Vec<(usize, f64)> = rebuild_sweep
        .iter()
        .map(|&n| {
            let inc = runs
                .iter()
                .find(|r| r.jobs == n && r.path == "incremental" && r.backend == "analytic")
                .expect("incremental analytic run");
            let reb = runs
                .iter()
                .find(|r| r.jobs == n && r.path == "rebuild")
                .expect("rebuild run");
            (n, inc.jobs_per_sec / reb.jobs_per_sec)
        })
        .collect();
    for (n, x) in &speedups {
        println!("speedup @ {n} jobs (incremental vs rebuild): {x:.2}x");
    }

    // Parallel vs sequential on the analytic backend (honest only
    // together with hw_threads: with one hardware thread the partitioned
    // engine pays the merge barrier without any concurrency to win).
    let par_speedups: Vec<(usize, f64)> = sweep
        .iter()
        .filter_map(|&n| {
            let seq = runs
                .iter()
                .find(|r| r.jobs == n && r.path == "incremental" && r.backend == "analytic")?;
            let par = runs.iter().find(|r| {
                r.jobs == n && r.path == "parallel" && r.backend.starts_with("analytic")
            })?;
            Some((n, par.jobs_per_sec / seq.jobs_per_sec))
        })
        .collect();
    for (n, x) in &par_speedups {
        println!("speedup @ {n} jobs (parallel x{PARALLEL_PARTS} vs sequential): {x:.2}x");
    }

    std::fs::write(&out, to_json(&runs, quick, &speedups, &par_speedups))
        .expect("write BENCH_scale.json");
    println!("wrote {out}");

    // Probed run (observation-only; the schedule is bit-identical to the
    // unprobed sweep rows — DESIGN.md §11). One incremental analytic point
    // at the sweep's smallest size keeps the full event buffer affordable.
    if trace.is_some() || timeseries {
        let n = sweep[0];
        let mut rec = TraceRecorder::new(TraceConfig {
            window: Some(WindowConfig::new(
                SimDuration::from_secs(10),
                SimDuration::from_secs(60),
            )),
        });
        let exp = exp_for(n, EngineMode::Analytic, Path::Incremental);
        let r = llmsched_bench::run_policy_probed(&art, Policy::LlmSched, &exp, &mut rec);
        assert_eq!(r.incomplete, 0, "probed run stranded jobs");
        println!(
            "probed run: {} jobs, {} probe events, avg JCT {:.3}s",
            n,
            rec.events().len(),
            r.avg_jct_secs()
        );
        if timeseries {
            let ts = r
                .timeseries
                .as_ref()
                .expect("probed run aggregates windows");
            llmsched_bench::print_timeseries(ts);
        }
        if let Some(prefix) = &trace {
            llmsched_bench::export_trace_or_die(prefix, &rec, &r, true);
        }
    }

    if let Some(floor) = floor {
        let worst = runs
            .iter()
            .filter(|r| r.path == "incremental")
            .map(|r| r.jobs_per_sec)
            .fold(f64::INFINITY, f64::min);
        if worst < floor {
            eprintln!("FAIL: {worst:.1} simulated jobs/sec is below the floor of {floor:.1}");
            std::process::exit(1);
        }
        println!("floor check passed: {worst:.1} >= {floor:.1} jobs/sec");
    }

    if check {
        // Scaling regression gate: disagg throughput used to *decay* with
        // job count (a per-placement router-view allocation — 5,061
        // jobs/s at 10k fell to 3,978 at 50k before the reused scratch
        // buffer landed). Throughput at 50k must stay within 15% of the
        // 10k figure; noise runs well under that, the regressed backend
        // sat at −21%. A quick/override sweep doesn't produce the two
        // disagg rows the gate needs, so run them on demand — the gate
        // works in CI without paying for the full sweep.
        let tput = |runs: &[Run], jobs: usize| {
            runs.iter()
                .find(|r| {
                    r.jobs == jobs && r.path == "incremental" && r.backend.starts_with("disagg")
                })
                .map(|r| r.jobs_per_sec)
        };
        for jobs in [10_000, 50_000] {
            if tput(&runs, jobs).is_none() {
                record(
                    &mut runs,
                    run_one(&art, jobs, EngineMode::Disagg, Path::Incremental),
                );
            }
        }
        let (small, large) = (
            tput(&runs, 10_000).expect("disagg 10k run"),
            tput(&runs, 50_000).expect("disagg 50k run"),
        );
        let ratio = large / small;
        if ratio < 0.85 {
            eprintln!(
                "FAIL: disagg throughput decays with scale: {small:.1} jobs/s at 10k \
                 -> {large:.1} at 50k ({:.0}%)",
                (ratio - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "scaling check passed: disagg {small:.1} jobs/s at 10k -> {large:.1} at 50k \
             ({ratio:.2}x)"
        );

        // Parallel regression gate: conservative-window stepping +
        // invocation coalescing must keep the partitioned engine within
        // 10% of the sequential path on every backend and sweep size —
        // including single-hardware-thread hosts, where there is no
        // concurrency to win and the ratio measures pure barrier/window
        // overhead. Before the window path landed, 1-thread ratios sat
        // as low as 0.75x. Quick-tier rows run in ~0.5 s, where scheduler
        // noise alone swings ±10%, so a pair that misses the bar gets one
        // fresh re-measure of both rows (best-of-two) before failing.
        let mut gated = 0usize;
        let pairs: Vec<(usize, EngineMode, f64)> = runs
            .iter()
            .filter(|r| r.path == "incremental")
            .filter_map(|seq| {
                let par = runs.iter().find(|r| {
                    r.jobs == seq.jobs
                        && r.path == "parallel"
                        && r.backend.starts_with(&seq.backend)
                })?;
                let mode = if seq.backend.starts_with("analytic") {
                    EngineMode::Analytic
                } else if seq.backend.starts_with("disagg") {
                    EngineMode::Disagg
                } else {
                    EngineMode::Cluster
                };
                Some((seq.jobs, mode, par.jobs_per_sec / seq.jobs_per_sec))
            })
            .collect();
        for (jobs, mode, mut ratio) in pairs {
            gated += 1;
            if ratio < 0.9 {
                let seq = run_one(&art, jobs, mode, Path::Incremental);
                let par = run_one(&art, jobs, mode, Path::Parallel);
                ratio = ratio.max(par.jobs_per_sec / seq.jobs_per_sec);
            }
            if ratio < 0.9 {
                eprintln!(
                    "FAIL: parallel x{PARALLEL_PARTS} at {jobs} jobs ({mode:?}) runs at \
                     {ratio:.2}x of sequential (best of two)"
                );
                std::process::exit(1);
            }
            println!("parallel check passed: {jobs} jobs ({mode:?}): {ratio:.2}x of sequential");
        }
        assert!(
            gated > 0,
            "parallel gate matched no (sequential, parallel) row pairs"
        );

        // Scheduler-fraction gate: invocation coalescing + capacity-aware
        // elision exist to keep the serial scheduler term of Amdahl's law
        // bounded. LLMSched's BN inference legitimately dominates this
        // pipeline (incremental rows measure 73–79% of wall inside the
        // scheduler), so the ceiling is a regression tripwire above that
        // band, not an aspiration: a breach means per-invocation cost or
        // the skip/elide machinery genuinely regressed. Rebuild rows are
        // exempt — the quadratic reference path sits at ~97% by design.
        const SCHED_FRACTION_CEILING: f64 = 0.85;
        for r in runs.iter().filter(|r| r.path != "rebuild") {
            if r.sched_time_fraction > SCHED_FRACTION_CEILING {
                eprintln!(
                    "FAIL: {} jobs ({} / {}) spends {:.1}% of wall inside the scheduler \
                     (ceiling {:.0}%)",
                    r.jobs,
                    r.backend,
                    r.path,
                    r.sched_time_fraction * 100.0,
                    SCHED_FRACTION_CEILING * 100.0
                );
                std::process::exit(1);
            }
        }
        println!(
            "scheduler-fraction check passed: all rows under {:.0}% of wall",
            SCHED_FRACTION_CEILING * 100.0
        );
    }
}

//! **Scale throughput** — the repo's performance trajectory: how many jobs
//! per wall-clock second the simulator + scheduler pipeline sustains as the
//! workload grows to production-ish sizes, and what the delta-driven
//! incremental scheduling core buys over the rebuild-per-call reference
//! path (bit-identical schedules, very different overhead).
//!
//! Sweeps 10k/50k/100k-job Mixed workloads under LLMSched across the
//! analytic, cluster and disaggregated backends (incremental path), plus
//! rebuild-path reference runs for the speedup ratio (all three backends
//! in `--quick` mode; analytic-only on the full sweep, where a non-analytic
//! 50k rebuild would take minutes) and partitioned-engine runs
//! (`path: "parallel"`) on every backend for the parallel-vs-sequential
//! ratio. Sweep rows run under the documented bounded-staleness decision
//! horizon ([`DECISION_HORIZON_SECS`]; rebuild rows stay exact), with one
//! exact (ε = 0) twin per backend at the smallest sweep size so the
//! avg-JCT drift the relaxation buys its throughput with is always on
//! record. Writes `BENCH_scale.json` at the repo root, including the
//! host's `hw_threads` — partitioned speedup is meaningless without it (a
//! 1-hardware-thread container time-slices the shard workers, so the
//! parallel rows measure barrier overhead, not speedup).
//!
//! Usage:
//!   cargo run --release -p llmsched-bench --bin scale_throughput
//!     [--quick]            # one small sweep (CI)
//!     [--runs <n>]         # repeat every row n times, report the
//!                          # median-of-n wall clock (default 1)
//!     [--partitions <n>]   # shard count of the parallel rows (default 4)
//!     [--horizon <secs>]   # bounded-staleness horizon ε for the sweep
//!                          # rows (default DECISION_HORIZON_SECS; 0 = exact)
//!     [--floor <jobs/s>]   # exit non-zero if any incremental run
//!                          # simulates fewer jobs/sec than this
//!     [--check]            # exit non-zero if disagg throughput decays
//!                          # from 10k to 50k jobs, a partitioned run
//!                          # falls below 0.9x its sequential twin, any
//!                          # row spends more than the ceiling of its
//!                          # wall clock inside the scheduler, or the
//!                          # ε>0 avg-JCT drift vs the ε=0 twin exceeds
//!                          # 0.5% on any backend
//!     [--out <path>]       # default BENCH_scale.json
//!     [--trace <prefix>]   # also run one probed sweep point and export
//!                          # <prefix>.jsonl + <prefix>.trace.json
//!                          # (Perfetto-loadable); exit non-zero if the
//!                          # exports fail validation
//!     [--timeseries]       # print the probed run's windowed time-series
//!     [--no-coalescing]    # A/B switch: disable scheduler invocation
//!                          # coalescing (schedules stay bit-identical)

use std::fmt::Write as _;
use std::time::Instant;

use llmsched_bench::{ExperimentConfig, Policy, TrainedArtifacts};
use llmsched_core::prelude::LlmSchedConfig;
use llmsched_dag::time::SimDuration;
use llmsched_sim::engine::{ClusterConfig, EngineMode};
use llmsched_sim::par::{Parallelism, ShardStats};
use llmsched_sim::telemetry::{TraceConfig, TraceRecorder, WindowConfig};
use llmsched_workloads::prelude::WorkloadKind;

/// Cluster scale factor. The Mixed default cluster is tuned for the
/// paper's 300-job runs at λ = 0.9 jobs/s, which by Little's law keeps
/// only ~15 jobs in flight — far too few to stress a scheduler. The
/// scale sweep multiplies executors and raises the arrival rate,
/// pushing the steady-state active set into the hundreds: the regime
/// where per-invocation scheduler cost actually shows. The cluster is
/// scaled *more* than the arrival rate so the queue stays stable — in
/// an overloaded system the active set grows with the job count and
/// every run (most of all the rebuild reference) turns quadratic.
const CLUSTER_SCALE: usize = 48;

/// Arrival rate: high enough for hundreds of jobs in flight, safely
/// below the scaled service capacity.
const LAMBDA: f64 = 24.0;

/// Default shard count of the `path: "parallel"` rows (matches the
/// partitioned engine's reference configuration; clamped to the executor
/// count). Override with `--partitions`.
const PARALLEL_PARTS: usize = 4;

/// The documented default bounded-staleness horizon (ε, simulated
/// seconds) the sweep's incremental and parallel rows run under: decision
/// points within ε of the previous invocation are folded into one batched
/// invocation at the horizon edge (DESIGN.md §14). 30 ms sits where the
/// measured trade-off curve bends: avg-JCT drift stays at 0.1–0.46%
/// across backends (under the gated 0.5%), scheduler invocations drop to
/// the ~1/ε flush cadence (~1.4/job at 100k, from 5.1 exact), and the
/// partitioned path lands at ~3.4 barriers/job. Drift scales roughly
/// linearly in ε (measured 0.22% at 20 ms, 0.51–0.79% at 40 ms), so
/// 40 ms already breaches the gate on the disagg backend. Override with
/// `--horizon` (0 = exact); rebuild reference rows and the ε=0 drift
/// twins always run exact.
const DECISION_HORIZON_SECS: f64 = 0.03;

/// `--check`: ceiling on `|avg_jct(ε) − avg_jct(0)| / avg_jct(0)`.
const JCT_DRIFT_CEILING: f64 = 0.005;

/// How one sweep point exercises the engine + scheduler pipeline.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Delta-driven scheduling, sequential engine (the default).
    Incremental,
    /// Rebuild-per-call scheduling reference (quadratic blow-up).
    Rebuild,
    /// Delta-driven scheduling on the partitioned engine.
    Parallel,
}

impl Path {
    fn name(self) -> &'static str {
        match self {
            Path::Incremental => "incremental",
            Path::Rebuild => "rebuild",
            Path::Parallel => "parallel",
        }
    }
}

struct Run {
    jobs: usize,
    backend: String,
    path: &'static str,
    partitions: usize,
    /// The bounded-staleness horizon this row ran under (0 = exact).
    decision_horizon_secs: f64,
    wall_secs: f64,
    jobs_per_sec: f64,
    events: u64,
    sched_calls: u64,
    /// Decision points skipped by scheduler invocation coalescing
    /// (`sched_calls + coalesced + elided + deferred` is the total).
    coalesced_sched_calls: u64,
    /// Decision points elided by the capacity-aware check (no free slot
    /// of any ready class; the sweep runs LLMSched in work-conserving
    /// mode, so elision is live on these rows).
    elided_sched_calls: u64,
    /// Decision points deferred under the bounded-staleness horizon and
    /// folded into batched invocations (0 on exact rows).
    deferred_sched_calls: u64,
    /// Total scheduler wall clock over run wall clock — the Amdahl
    /// denominator the elision and batching work attacks.
    sched_time_fraction: f64,
    /// Scheduler barriers the partitioned engine took (0 on sequential
    /// rows). The conservative-window path's whole job is keeping this
    /// far below the event count.
    barriers: u64,
    /// Conservative lookahead windows taken (0 on sequential rows).
    windows: u64,
    sched_mean_ms: f64,
    sched_p50_ms: f64,
    sched_p99_ms: f64,
    avg_jct_secs: f64,
    /// Worker-pool size the run attached (0 = no pool, e.g. 1-thread
    /// hosts or sequential rows without parallel scoring).
    pool_threads: usize,
    /// Per-worker busy wall clock (ms) across the run — window stepping
    /// plus parallel candidate scoring.
    pool_busy_ms: Vec<f64>,
    /// Per-shard work breakdown (parallel rows only; empty otherwise).
    shards: Vec<ShardStats>,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `--partitions` override, defaulting to [`PARALLEL_PARTS`].
fn partitions() -> usize {
    arg_value("--partitions").map_or(PARALLEL_PARTS, |v| {
        v.parse().expect("--partitions takes a shard count")
    })
}

/// `--horizon` override, defaulting to [`DECISION_HORIZON_SECS`].
fn sweep_horizon() -> f64 {
    arg_value("--horizon").map_or(DECISION_HORIZON_SECS, |v| {
        v.parse().expect("--horizon takes seconds")
    })
}

/// `--runs` repetition count (median-of-n wall), defaulting to 1.
fn measure_runs() -> usize {
    arg_value("--runs").map_or(1, |v| {
        let n: usize = v.parse().expect("--runs takes a count");
        assert!(n >= 1, "--runs needs at least one run");
        n
    })
}

fn scaled_cluster(mode: EngineMode) -> ClusterConfig {
    let base = WorkloadKind::Mixed.default_cluster();
    // The derived disagg layout pins a single prefill replica — a
    // bottleneck that overloads at this arrival rate. Scale the prefill
    // pool with the cluster.
    let spec = (mode == EngineMode::Disagg).then(|| {
        let mut s = llmsched_sim::prelude::ClusterSpec::disaggregated(
            base.llm_executors * CLUSTER_SCALE,
            base.max_batch,
            base.latency.clone(),
        );
        s.groups[0].replicas = CLUSTER_SCALE;
        s
    });
    ClusterConfig {
        regular_executors: base.regular_executors * CLUSTER_SCALE,
        llm_executors: base.llm_executors * CLUSTER_SCALE,
        mode,
        spec,
        ..base
    }
}

fn exp_for(n_jobs: usize, mode: EngineMode, path: Path, horizon_secs: f64) -> ExperimentConfig {
    let mut cluster = scaled_cluster(mode);
    if path == Path::Parallel {
        cluster.parallelism = Parallelism::Partitioned(partitions());
    }
    if std::env::args().any(|a| a == "--no-coalescing") {
        cluster.coalescing = false;
    }
    // Bounded-staleness decision batching (DESIGN.md §14). The rebuild
    // reference and the ε=0 drift twins pass 0.0: exact mode.
    cluster.decision_horizon = (horizon_secs > 0.0).then_some(horizon_secs);
    ExperimentConfig {
        n_jobs,
        mode,
        lambda: LAMBDA,
        cluster: Some(cluster),
        rebuild: path == Path::Rebuild,
        // Work-conserving mode opts LLMSched into capacity-aware
        // decision-point elision (on the partitioned path: elided
        // *barriers*). Off by default in golden runs because it moves
        // the ε-draw stream; the throughput sweep is where it earns its
        // keep.
        llmsched: Some(LlmSchedConfig {
            work_conserving: true,
            ..LlmSchedConfig::default()
        }),
        ..ExperimentConfig::paper_default(WorkloadKind::Mixed, 42)
    }
}

fn run_one(art: &TrainedArtifacts, n_jobs: usize, mode: EngineMode, path: Path, eps: f64) -> Run {
    let exp = exp_for(n_jobs, mode, path, eps);
    // Median-of-n: the simulation is deterministic (every repeat produces
    // the bit-identical schedule), so repeats only re-sample wall clock —
    // the row keeps the median repeat's timing wholesale.
    let mut timed: Vec<(f64, llmsched_sim::metrics::SimResult)> = (0..measure_runs())
        .map(|_| {
            let start = Instant::now();
            let r = llmsched_bench::run_policy(art, Policy::LlmSched, &exp);
            (start.elapsed().as_secs_f64(), r)
        })
        .collect();
    timed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite walls"));
    let (wall, r) = timed.swap_remove(timed.len() / 2);
    assert_eq!(r.incomplete, 0, "scale run stranded jobs");
    if path == Path::Parallel {
        assert!(r.par.is_some(), "parallel rows must run partitioned");
    }
    let p = r.sched_overhead_percentiles();
    Run {
        jobs: n_jobs,
        backend: r.backend.clone(),
        path: path.name(),
        partitions: r.par.as_ref().map_or(0, |s| s.partitions),
        decision_horizon_secs: eps,
        wall_secs: wall,
        jobs_per_sec: n_jobs as f64 / wall,
        events: r.events,
        sched_calls: r.sched_calls,
        coalesced_sched_calls: r.sched_skipped,
        elided_sched_calls: r.sched_elided,
        deferred_sched_calls: r.sched_deferred,
        sched_time_fraction: r.sched_wall.as_secs_f64() / wall,
        barriers: r.par.as_ref().map_or(0, |s| s.barriers),
        windows: r.par.as_ref().map_or(0, |s| s.windows),
        sched_mean_ms: r.sched_overhead_ms(),
        sched_p50_ms: p.p50_ms,
        sched_p99_ms: p.p99_ms,
        avg_jct_secs: r.avg_jct_secs(),
        pool_threads: r.par.as_ref().map_or(0, |s| s.pool_threads),
        pool_busy_ms: r.par.as_ref().map_or_else(Vec::new, |s| {
            s.pool_busy.iter().map(|d| d.as_secs_f64() * 1e3).collect()
        }),
        shards: r.par.map_or_else(Vec::new, |s| s.per_shard),
    }
}

fn to_json(
    runs: &[Run],
    quick: bool,
    speedups: &[(usize, String, f64)],
    par_speedups: &[(usize, f64)],
    drifts: &[(String, f64)],
) -> String {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale_throughput\",");
    let _ = writeln!(s, "  \"policy\": \"LLMSched\",");
    let _ = writeln!(s, "  \"workload\": \"Mixed\",");
    let _ = writeln!(s, "  \"cluster_scale\": {CLUSTER_SCALE},");
    let _ = writeln!(s, "  \"hw_threads\": {hw},");
    let _ = writeln!(s, "  \"decision_horizon_secs\": {},", sweep_horizon());
    let _ = writeln!(s, "  \"measure_runs\": {},", measure_runs());
    let _ = writeln!(s, "  \"quick\": {quick},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"jobs\": {}, \"backend\": \"{}\", \"path\": \"{}\", \
             \"partitions\": {}, \"decision_horizon_secs\": {}, \
             \"wall_secs\": {:.3}, \"jobs_per_sec\": {:.1}, \"events\": {}, \
             \"sched_calls\": {}, \"coalesced_sched_calls\": {}, \
             \"elided_sched_calls\": {}, \"deferred_sched_calls\": {}, \
             \"sched_time_fraction\": {:.4}, \
             \"barriers\": {}, \"windows\": {}, \"sched_mean_ms\": {:.4}, \
             \"sched_p50_ms\": {:.4}, \"sched_p99_ms\": {:.4}, \
             \"avg_jct_secs\": {:.3}}}",
            r.jobs,
            r.backend,
            r.path,
            r.partitions,
            r.decision_horizon_secs,
            r.wall_secs,
            r.jobs_per_sec,
            r.events,
            r.sched_calls,
            r.coalesced_sched_calls,
            r.elided_sched_calls,
            r.deferred_sched_calls,
            r.sched_time_fraction,
            r.barriers,
            r.windows,
            r.sched_mean_ms,
            r.sched_p50_ms,
            r.sched_p99_ms,
            r.avg_jct_secs,
        );
        if r.pool_threads > 0 {
            s.truncate(s.len() - 1); // reopen the row object
            let _ = write!(
                s,
                ", \"pool_threads\": {}, \"pool_busy_ms\": [",
                r.pool_threads
            );
            for (j, ms) in r.pool_busy_ms.iter().enumerate() {
                let _ = write!(s, "{}{ms:.3}", if j > 0 { ", " } else { "" });
            }
            s.push_str("]}");
        }
        if !r.shards.is_empty() {
            s.truncate(s.len() - 1); // reopen the row object
            s.push_str(", \"per_shard\": [");
            for (j, sh) in r.shards.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"batches\": {}, \"threaded_batches\": {}, \"events\": {}, \
                     \"busy_ms\": {:.3}}}",
                    if j > 0 { ", " } else { "" },
                    sh.batches,
                    sh.threaded_batches,
                    sh.events,
                    sh.busy.as_secs_f64() * 1e3,
                );
            }
            s.push_str("]}");
        }
        s.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedup_incremental_vs_rebuild\": {");
    for (i, (jobs, backend, x)) in speedups.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{jobs}/{backend}\": {x:.2}",
            if i > 0 { ", " } else { "" }
        );
    }
    s.push_str("},\n");
    s.push_str("  \"speedup_parallel_vs_sequential\": {");
    for (i, (jobs, x)) in par_speedups.iter().enumerate() {
        let _ = write!(s, "{}\"{jobs}\": {x:.2}", if i > 0 { ", " } else { "" });
    }
    s.push_str("},\n");
    s.push_str("  \"jct_drift_vs_exact\": {");
    for (i, (backend, d)) in drifts.iter().enumerate() {
        let _ = write!(s, "{}\"{backend}\": {d:.5}", if i > 0 { ", " } else { "" });
    }
    s.push_str("}\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| arg_value(name);
    let floor: Option<f64> = flag("--floor").map(|v| v.parse().expect("--floor takes a number"));
    let check = args.iter().any(|a| a == "--check");
    let out = flag("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let trace: Option<String> = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "results/scale_trace".to_string())
    });
    let timeseries = args.iter().any(|a| a == "--timeseries");
    // Tuning escape hatch: one incremental sweep at a custom job count.
    let jobs_override: Option<usize> =
        flag("--jobs").map(|v| v.parse().expect("--jobs takes a count"));
    let eps = sweep_horizon();

    let art = TrainedArtifacts::train(if quick { 100 } else { 200 }, 1);
    let override_sweep = [jobs_override.unwrap_or(0)];
    let sweep: &[usize] = match jobs_override {
        Some(_) => &override_sweep,
        None if quick => &[2_000],
        None => &[10_000, 50_000, 100_000],
    };
    // Every backend even in quick mode: the parallel-vs-sequential gate
    // (`--check`) must cover the cluster and disagg lookahead paths in CI,
    // not just the analytic one.
    let backends: &[EngineMode] = &[
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    // Rebuild reference runs: all three backends in quick mode (the
    // speedup-vs-rebuild column is per backend); analytic-only on the
    // full sweep, where the quadratic reference already takes ~2 minutes
    // at 50k — the 100k rebuild is omitted entirely, it's the blow-up
    // the incremental core exists to avoid.
    let rebuild_sweep: &[usize] = match jobs_override {
        Some(_) => &[],
        None if quick => &[2_000],
        None => &[10_000, 50_000],
    };
    let rebuild_backends: &[EngineMode] = if quick {
        backends
    } else {
        &[EngineMode::Analytic]
    };

    println!(
        "{:>8} {:>22} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "jobs",
        "backend",
        "path",
        "wall s",
        "jobs/s",
        "mean ms",
        "p50 ms",
        "p99 ms",
        "sched%",
        "elided",
        "deferred"
    );
    fn record(runs: &mut Vec<Run>, r: Run) {
        println!(
            "{:>8} {:>22} {:>12} {:>10.2} {:>10.1} {:>10.4} {:>10.4} {:>10.4} {:>8.1} {:>10} {:>10}",
            r.jobs,
            r.backend,
            r.path,
            r.wall_secs,
            r.jobs_per_sec,
            r.sched_mean_ms,
            r.sched_p50_ms,
            r.sched_p99_ms,
            r.sched_time_fraction * 100.0,
            r.elided_sched_calls,
            r.deferred_sched_calls
        );
        if r.pool_threads > 0 {
            let cells: Vec<String> = r
                .pool_busy_ms
                .iter()
                .map(|ms| format!("{ms:.1}ms"))
                .collect();
            println!(
                "{:>8} pool: {} threads, busy [{}]",
                "",
                r.pool_threads,
                cells.join(", ")
            );
        }
        if !r.shards.is_empty() {
            let cells: Vec<String> = r
                .shards
                .iter()
                .map(|s| {
                    format!(
                        "{} batches ({} threaded, {} ev, {:.1}ms busy)",
                        s.batches,
                        s.threaded_batches,
                        s.events,
                        s.busy.as_secs_f64() * 1e3
                    )
                })
                .collect();
            println!("{:>8} shards: {}", "", cells.join(" | "));
        }
        runs.push(r);
    }
    let mut runs: Vec<Run> = Vec::new();
    for &n in sweep {
        for &mode in backends {
            record(&mut runs, run_one(&art, n, mode, Path::Incremental, eps));
            record(&mut runs, run_one(&art, n, mode, Path::Parallel, eps));
        }
    }
    // ε=0 twins at the smallest sweep size: the exact-schedule reference
    // the drift gate (and anyone reading BENCH_scale.json) compares the
    // relaxed rows against. Skipped when the sweep itself is exact.
    if eps > 0.0 {
        for &mode in backends {
            record(
                &mut runs,
                run_one(&art, sweep[0], mode, Path::Incremental, 0.0),
            );
        }
    }
    for &n in rebuild_sweep {
        for &mode in rebuild_backends {
            record(&mut runs, run_one(&art, n, mode, Path::Rebuild, 0.0));
        }
    }

    let speedups: Vec<(usize, String, f64)> = runs
        .iter()
        .filter(|r| r.path == "rebuild")
        .map(|reb| {
            // Rebuild rows always run exact, so pair them with the ε=0
            // incremental twin when one exists at this size (smallest
            // sweep point) — comparing against a relaxed row would fold
            // the batching win into the incremental-vs-rebuild ratio.
            let inc = runs
                .iter()
                .filter(|r| {
                    r.jobs == reb.jobs && r.path == "incremental" && r.backend == reb.backend
                })
                .min_by(|a, b| {
                    a.decision_horizon_secs
                        .partial_cmp(&b.decision_horizon_secs)
                        .expect("finite horizons")
                })
                .expect("every rebuild row has an incremental twin");
            (
                reb.jobs,
                reb.backend.clone(),
                inc.jobs_per_sec / reb.jobs_per_sec,
            )
        })
        .collect();
    for (n, backend, x) in &speedups {
        println!("speedup @ {n} jobs / {backend} (incremental vs rebuild): {x:.2}x");
    }

    // Parallel vs sequential on the analytic backend (honest only
    // together with hw_threads: with one hardware thread the partitioned
    // engine pays the merge barrier without any concurrency to win).
    let par_speedups: Vec<(usize, f64)> = sweep
        .iter()
        .filter_map(|&n| {
            let seq = runs.iter().find(|r| {
                r.jobs == n
                    && r.path == "incremental"
                    && r.backend == "analytic"
                    && r.decision_horizon_secs == eps
            })?;
            let par = runs.iter().find(|r| {
                r.jobs == n && r.path == "parallel" && r.backend.starts_with("analytic")
            })?;
            Some((n, par.jobs_per_sec / seq.jobs_per_sec))
        })
        .collect();
    for (n, x) in &par_speedups {
        println!(
            "speedup @ {n} jobs (parallel x{} vs sequential): {x:.2}x",
            partitions()
        );
    }

    // Avg-JCT drift of the relaxed rows against their ε=0 twins, per
    // backend at the smallest sweep size (the relaxation's cost in
    // schedule quality — gated under `--check`).
    let drifts: Vec<(String, f64)> = runs
        .iter()
        .filter(|r| r.jobs == sweep[0] && r.path == "incremental" && r.decision_horizon_secs == 0.0)
        .filter_map(|exact| {
            let relaxed = runs.iter().find(|r| {
                r.jobs == exact.jobs
                    && r.path == "incremental"
                    && r.backend == exact.backend
                    && r.decision_horizon_secs > 0.0
            })?;
            let d = (relaxed.avg_jct_secs - exact.avg_jct_secs).abs() / exact.avg_jct_secs;
            Some((exact.backend.clone(), d))
        })
        .collect();
    for (backend, d) in &drifts {
        println!(
            "avg-JCT drift @ {} jobs / {backend} (ε={eps}s vs exact): {:.3}%",
            sweep[0],
            d * 100.0
        );
    }

    std::fs::write(
        &out,
        to_json(&runs, quick, &speedups, &par_speedups, &drifts),
    )
    .expect("write BENCH_scale.json");
    println!("wrote {out}");

    // Probed run (observation-only; the schedule is bit-identical to the
    // unprobed sweep rows — DESIGN.md §11). One incremental analytic point
    // at the sweep's smallest size keeps the full event buffer affordable.
    if trace.is_some() || timeseries {
        let n = sweep[0];
        let mut rec = TraceRecorder::new(TraceConfig {
            window: Some(WindowConfig::new(
                SimDuration::from_secs(10),
                SimDuration::from_secs(60),
            )),
        });
        let exp = exp_for(n, EngineMode::Analytic, Path::Incremental, eps);
        let r = llmsched_bench::run_policy_probed(&art, Policy::LlmSched, &exp, &mut rec);
        assert_eq!(r.incomplete, 0, "probed run stranded jobs");
        println!(
            "probed run: {} jobs, {} probe events, avg JCT {:.3}s",
            n,
            rec.events().len(),
            r.avg_jct_secs()
        );
        if timeseries {
            let ts = r
                .timeseries
                .as_ref()
                .expect("probed run aggregates windows");
            llmsched_bench::print_timeseries(ts);
        }
        if let Some(prefix) = &trace {
            llmsched_bench::export_trace_or_die(prefix, &rec, &r, true);
        }
    }

    if let Some(floor) = floor {
        let worst = runs
            .iter()
            .filter(|r| r.path == "incremental")
            .map(|r| r.jobs_per_sec)
            .fold(f64::INFINITY, f64::min);
        if worst < floor {
            eprintln!("FAIL: {worst:.1} simulated jobs/sec is below the floor of {floor:.1}");
            std::process::exit(1);
        }
        println!("floor check passed: {worst:.1} >= {floor:.1} jobs/sec");
    }

    if check {
        // Bounded-staleness drift gate: the relaxation buys its deleted
        // invocations and barriers with decision latency; the avg-JCT it
        // costs must stay bounded. Exact-mode sweeps (ε = 0) have no
        // drift to gate.
        for (backend, d) in &drifts {
            if *d > JCT_DRIFT_CEILING {
                eprintln!(
                    "FAIL: ε={eps}s avg-JCT drift on {backend} is {:.3}% \
                     (ceiling {:.1}%)",
                    d * 100.0,
                    JCT_DRIFT_CEILING * 100.0
                );
                std::process::exit(1);
            }
        }
        if eps > 0.0 {
            assert!(
                !drifts.is_empty(),
                "drift gate matched no (relaxed, exact) row pairs"
            );
            println!(
                "jct-drift check passed: all backends within {:.1}% of the exact schedule",
                JCT_DRIFT_CEILING * 100.0
            );
        }

        // Scaling regression gate: disagg throughput used to *decay* with
        // job count (a per-placement router-view allocation — 5,061
        // jobs/s at 10k fell to 3,978 at 50k before the reused scratch
        // buffer landed). Throughput at 50k must stay within 15% of the
        // 10k figure; noise runs well under that, the regressed backend
        // sat at −21%. A quick/override sweep doesn't produce the two
        // disagg rows the gate needs, so run them on demand — the gate
        // works in CI without paying for the full sweep.
        let tput = |runs: &[Run], jobs: usize| {
            runs.iter()
                .find(|r| {
                    r.jobs == jobs
                        && r.path == "incremental"
                        && r.backend.starts_with("disagg")
                        && r.decision_horizon_secs == eps
                })
                .map(|r| r.jobs_per_sec)
        };
        for jobs in [10_000, 50_000] {
            if tput(&runs, jobs).is_none() {
                record(
                    &mut runs,
                    run_one(&art, jobs, EngineMode::Disagg, Path::Incremental, eps),
                );
            }
        }
        let (small, large) = (
            tput(&runs, 10_000).expect("disagg 10k run"),
            tput(&runs, 50_000).expect("disagg 50k run"),
        );
        let ratio = large / small;
        if ratio < 0.85 {
            eprintln!(
                "FAIL: disagg throughput decays with scale: {small:.1} jobs/s at 10k \
                 -> {large:.1} at 50k ({:.0}%)",
                (ratio - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "scaling check passed: disagg {small:.1} jobs/s at 10k -> {large:.1} at 50k \
             ({ratio:.2}x)"
        );

        // Parallel regression gate: conservative-window stepping +
        // invocation coalescing must keep the partitioned engine within
        // 10% of the sequential path on every backend and sweep size —
        // including single-hardware-thread hosts, where there is no
        // concurrency to win and the ratio measures pure barrier/window
        // overhead. Before the window path landed, 1-thread ratios sat
        // as low as 0.75x. Quick-tier rows run in ~0.5 s, where scheduler
        // noise alone swings ±10%, so a pair that misses the bar gets one
        // fresh re-measure of both rows (best-of-two) before failing.
        let mut gated = 0usize;
        let pairs: Vec<(usize, EngineMode, f64)> = runs
            .iter()
            .filter(|r| r.path == "incremental" && r.decision_horizon_secs == eps)
            .filter_map(|seq| {
                let par = runs.iter().find(|r| {
                    r.jobs == seq.jobs
                        && r.path == "parallel"
                        && r.backend.starts_with(&seq.backend)
                })?;
                let mode = if seq.backend.starts_with("analytic") {
                    EngineMode::Analytic
                } else if seq.backend.starts_with("disagg") {
                    EngineMode::Disagg
                } else {
                    EngineMode::Cluster
                };
                Some((seq.jobs, mode, par.jobs_per_sec / seq.jobs_per_sec))
            })
            .collect();
        for (jobs, mode, mut ratio) in pairs {
            gated += 1;
            if ratio < 0.9 {
                let seq = run_one(&art, jobs, mode, Path::Incremental, eps);
                let par = run_one(&art, jobs, mode, Path::Parallel, eps);
                ratio = ratio.max(par.jobs_per_sec / seq.jobs_per_sec);
            }
            if ratio < 0.9 {
                eprintln!(
                    "FAIL: parallel x{} at {jobs} jobs ({mode:?}) runs at \
                     {ratio:.2}x of sequential (best of two)",
                    partitions()
                );
                std::process::exit(1);
            }
            println!("parallel check passed: {jobs} jobs ({mode:?}): {ratio:.2}x of sequential");
        }
        assert!(
            gated > 0,
            "parallel gate matched no (sequential, parallel) row pairs"
        );

        // Scheduler-fraction gate: invocation coalescing + capacity-aware
        // elision exist to keep the serial scheduler term of Amdahl's law
        // bounded. LLMSched's BN inference legitimately dominates this
        // pipeline (incremental rows measure 73–79% of wall inside the
        // scheduler under exact decision timing), so the ceiling is a
        // regression tripwire above that band, not an aspiration: a
        // breach means per-invocation cost or the skip/elide/defer
        // machinery genuinely regressed. Rebuild rows are exempt — the
        // quadratic reference path sits at ~97% by design.
        const SCHED_FRACTION_CEILING: f64 = 0.85;
        for r in runs.iter().filter(|r| r.path != "rebuild") {
            if r.sched_time_fraction > SCHED_FRACTION_CEILING {
                eprintln!(
                    "FAIL: {} jobs ({} / {}) spends {:.1}% of wall inside the scheduler \
                     (ceiling {:.0}%)",
                    r.jobs,
                    r.backend,
                    r.path,
                    r.sched_time_fraction * 100.0,
                    SCHED_FRACTION_CEILING * 100.0
                );
                std::process::exit(1);
            }
        }
        println!(
            "scheduler-fraction check passed: all rows under {:.0}% of wall",
            SCHED_FRACTION_CEILING * 100.0
        );
    }
}

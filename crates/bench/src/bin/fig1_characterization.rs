//! **Fig. 1** — workload characterization of three representative compound
//! LLM applications:
//!
//! * (a) job-duration distribution of sequence sorting (paper: 10–300 s);
//! * (b) chain-length distribution of code generation (paper: 3–15);
//! * (c) generated-stage distribution of task automation (paper: 1–8).
//!
//! Prints probability densities per bin (the paper's y-axis) and writes
//! `results/fig1{a,b,c}.csv`.
//!
//! Usage: `cargo run --release -p llmsched-bench --bin fig1_characterization [--quick]`

use llmsched_bayes::stats::Histogram;
use llmsched_bench::{write_csv, Table};
use llmsched_dag::ids::{JobId, StageId};
use llmsched_dag::time::{SimDuration, SimTime};
use llmsched_workloads::apps::codegen::chain_length;
use llmsched_workloads::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_token = SimDuration::from_secs_f64(NOMINAL_PER_TOKEN_SECS);
    let mut rng = StdRng::seed_from_u64(1);

    // (a) 500 synthetic sequences (paper's dataset size).
    let n_sort = if quick { 100 } else { 500 };
    let g = AppKind::SequenceSorting.generator();
    let durs: Vec<f64> = (0..n_sort)
        .map(|i| {
            g.generate(JobId(i as u64), SimTime::ZERO, &mut rng)
                .total_nominal_duration(per_token)
                .as_secs_f64()
        })
        .collect();
    let hist = Histogram::new(&durs, 12);
    let mut t = Table::new(vec!["duration_s", "density"]);
    println!("Fig. 1a — sequence sorting job duration ({n_sort} jobs):");
    for (b, d) in hist.densities().iter().enumerate() {
        let c = hist.bin_center(b);
        println!(
            "  {:>6.0}s  {:.4}  {}",
            c,
            d,
            "#".repeat((d * 400.0) as usize)
        );
        t.row(vec![format!("{c:.1}"), format!("{d:.6}")]);
    }
    let lo = durs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = durs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("  span: {lo:.0}s … {hi:.0}s   (paper: ~10 … ~300 s)\n");
    write_csv(&t, "fig1a");

    // (b) Chain length on 974 MBPP-like tasks.
    let n_cg = if quick { 200 } else { 974 };
    let g = AppKind::CodeGeneration.generator();
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..n_cg {
        let j = g.generate(JobId(i as u64), SimTime::ZERO, &mut rng);
        *counts.entry(chain_length(&j)).or_insert(0usize) += 1;
    }
    let mut t = Table::new(vec!["chain_length", "density"]);
    println!("Fig. 1b — code generation chain length ({n_cg} jobs):");
    for (len, c) in &counts {
        let d = *c as f64 / n_cg as f64;
        println!(
            "  len {:>2}  {:.3}  {}",
            len,
            d,
            "#".repeat((d * 80.0) as usize)
        );
        t.row(vec![len.to_string(), format!("{d:.4}")]);
    }
    println!(
        "  support: {:?}   (paper: 3 … 15)\n",
        counts.keys().collect::<Vec<_>>()
    );
    write_csv(&t, "fig1b");

    // (c) Generated stages in task automation.
    let n_ta = if quick { 500 } else { 3000 };
    let g = AppKind::TaskAutomation.generator();
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..n_ta {
        let j = g.generate(JobId(i as u64), SimTime::ZERO, &mut rng);
        *counts
            .entry(j.children_of_dynamic(StageId(1)).len())
            .or_insert(0usize) += 1;
    }
    let mut t = Table::new(vec!["generated_stages", "density"]);
    println!("Fig. 1c — task automation generated stages ({n_ta} jobs):");
    for (m, c) in &counts {
        let d = *c as f64 / n_ta as f64;
        println!(
            "  m = {:>2}  {:.3}  {}",
            m,
            d,
            "#".repeat((d * 80.0) as usize)
        );
        t.row(vec![m.to_string(), format!("{d:.4}")]);
    }
    println!(
        "  support: {:?}   (paper: 1 … 8)",
        counts.keys().collect::<Vec<_>>()
    );
    write_csv(&t, "fig1c");
}

//! Workload runners: one simulation per (policy, workload, parameters),
//! with optional thread-parallel sweeps.

use llmsched_core::prelude::LlmSchedConfig;
use llmsched_sim::engine::{simulate, simulate_probed, ClusterConfig, EngineMode};
use llmsched_sim::metrics::SimResult;
use llmsched_sim::telemetry::Probe;
use llmsched_workloads::prelude::*;

use crate::roster::{Policy, TrainedArtifacts};

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Workload mix.
    pub kind: WorkloadKind,
    /// Number of jobs.
    pub n_jobs: usize,
    /// Poisson arrival rate (jobs/s), used when `arrivals` is `None`.
    pub lambda: f64,
    /// Arrival-process override (bursty MMPP, diurnal); `None` means
    /// Poisson at `lambda`.
    pub arrivals: Option<ArrivalProcess>,
    /// Workload seed (same seed ⇒ identical job sequence for every policy).
    pub seed: u64,
    /// Engine fidelity (analytic = Fig. 7 simulator, token-level = Fig. 8
    /// testbed stand-in, cluster/disagg = Fig. 11 serving shapes).
    pub mode: EngineMode,
    /// LLMSched parameter overrides (ε, r, …).
    pub llmsched: Option<LlmSchedConfig>,
    /// Cluster override; `None` uses the mix's tuned default.
    pub cluster: Option<ClusterConfig>,
    /// Run policies on the rebuild-per-call reference path instead of the
    /// incremental default (schedules are bit-identical; only the
    /// scheduler overhead differs).
    pub rebuild: bool,
}

impl ExperimentConfig {
    /// The paper's default setting: 300 jobs, λ = 0.9, analytic engine.
    pub fn paper_default(kind: WorkloadKind, seed: u64) -> Self {
        ExperimentConfig {
            kind,
            n_jobs: 300,
            lambda: 0.9,
            arrivals: None,
            seed,
            mode: EngineMode::Analytic,
            llmsched: None,
            cluster: None,
            rebuild: false,
        }
    }

    /// The effective cluster configuration.
    pub fn cluster(&self) -> ClusterConfig {
        let mut c = self
            .cluster
            .clone()
            .unwrap_or_else(|| self.kind.default_cluster());
        c.mode = self.mode;
        c
    }

    /// The effective arrival process.
    pub fn arrival_process(&self) -> ArrivalProcess {
        self.arrivals.unwrap_or(ArrivalProcess::Poisson {
            lambda: self.lambda,
        })
    }
}

/// Runs one policy on one workload instance.
pub fn run_policy(art: &TrainedArtifacts, policy: Policy, exp: &ExperimentConfig) -> SimResult {
    let w = generate_workload_with(exp.kind, exp.n_jobs, &exp.arrival_process(), exp.seed);
    let mut sched = art.build_mode(policy, exp.llmsched.clone(), exp.rebuild);
    simulate(&exp.cluster(), &w.templates, w.jobs, &mut sched)
}

/// [`run_policy`] with a telemetry probe attached (trace export and
/// windowed time-series; the schedule is bit-identical to the unprobed
/// run — see DESIGN.md §11).
pub fn run_policy_probed(
    art: &TrainedArtifacts,
    policy: Policy,
    exp: &ExperimentConfig,
    probe: &mut dyn Probe,
) -> SimResult {
    let w = generate_workload_with(exp.kind, exp.n_jobs, &exp.arrival_process(), exp.seed);
    let mut sched = art.build_mode(policy, exp.llmsched.clone(), exp.rebuild);
    simulate_probed(&exp.cluster(), &w.templates, w.jobs, &mut sched, probe)
}

/// Runs several policies on the same workload in parallel (bounded by
/// the hardware thread count) and returns results in roster order.
pub fn run_policies_parallel(
    art: &TrainedArtifacts,
    policies: &[Policy],
    exp: &ExperimentConfig,
) -> Vec<SimResult> {
    crate::sweep::map(policies, |&p| run_policy(art, p, exp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_carries_parameters() {
        let e = ExperimentConfig::paper_default(WorkloadKind::Planning, 7);
        assert_eq!(e.n_jobs, 300);
        assert!((e.lambda - 0.9).abs() < 1e-12);
        assert_eq!(e.cluster().mode, EngineMode::Analytic);
    }

    #[test]
    fn run_policy_completes_small_run() {
        let art = crate::TrainedArtifacts::train(25, 3);
        let exp = ExperimentConfig {
            n_jobs: 12,
            ..ExperimentConfig::paper_default(WorkloadKind::ChainLike, 5)
        };
        let r = run_policy(&art, Policy::Fcfs, &exp);
        assert_eq!(r.incomplete, 0);
        assert_eq!(r.jobs.len(), 12);
    }

    #[test]
    fn arrival_override_changes_the_trace_poisson_default_does_not() {
        let art = crate::TrainedArtifacts::train(25, 3);
        let base = ExperimentConfig {
            n_jobs: 10,
            ..ExperimentConfig::paper_default(WorkloadKind::ChainLike, 5)
        };
        let explicit = ExperimentConfig {
            arrivals: Some(ArrivalProcess::Poisson { lambda: 0.9 }),
            ..base.clone()
        };
        let bursty = ExperimentConfig {
            arrivals: Some(ArrivalProcess::bursty(0.9)),
            ..base.clone()
        };
        let a = run_policy(&art, Policy::Fcfs, &base);
        let b = run_policy(&art, Policy::Fcfs, &explicit);
        let c = run_policy(&art, Policy::Fcfs, &bursty);
        assert_eq!(a.avg_jct_secs(), b.avg_jct_secs());
        assert_eq!(c.incomplete, 0);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let art = crate::TrainedArtifacts::train(25, 3);
        let exp = ExperimentConfig {
            n_jobs: 10,
            ..ExperimentConfig::paper_default(WorkloadKind::Planning, 9)
        };
        let seq = run_policy(&art, Policy::Sjf, &exp);
        let par = run_policies_parallel(&art, &[Policy::Sjf], &exp);
        assert_eq!(seq.avg_jct_secs(), par[0].avg_jct_secs());
    }
}

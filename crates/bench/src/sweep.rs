//! Deterministic bounded thread-pool sweeps.
//!
//! Every figure bin used to hand-roll its own `std::thread::scope` block
//! (one unbounded thread per sweep point — fig11 spawned 36 at once).
//! This module centralizes the pattern with three properties the ad-hoc
//! copies didn't all share:
//!
//! * **bounded workers** — at most `workers` OS threads regardless of
//!   sweep size (default: the hardware thread count), pulling indices
//!   from a shared atomic counter;
//! * **deterministic ordering** — results come back in *item order*, no
//!   matter which worker finished first;
//! * **panic propagation** — a panicking sweep point resurfaces in the
//!   caller with its original payload instead of being swallowed by a
//!   worker thread.
//!
//! Sweep points must be independent: `f` sees `&T` and shared captures
//! only, so two points cannot race on mutable state by construction.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker bound: one per hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on at most [`default_workers`] threads; results
/// in item order. See [`map_bounded`].
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_bounded(default_workers(), items, f)
}

/// Maps `f` over `items` on at most `workers` threads (clamped to
/// `[1, items.len()]`), returning results in item order.
///
/// # Panics
/// Re-raises the first worker panic (by join order) with its original
/// payload.
pub fn map_bounded<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Each worker drains the shared index counter into a local
        // `(index, result)` list; the join loop scatters them back into
        // item order, so completion order never leaks into the output.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        out[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        // Invert completion order: early items sleep longest.
        let items: Vec<u64> = (0..16).collect();
        let out = map_bounded(4, &items, |&i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_bound_is_respected() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..32).collect();
        map_bounded(3, &items, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            PEAK.load(Ordering::SeqCst) <= 3,
            "peak concurrency {} exceeded the bound",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn empty_and_oversized_bounds_are_fine() {
        let none: Vec<u32> = map_bounded(8, &[], |x: &u32| *x);
        assert!(none.is_empty());
        assert_eq!(map_bounded(999, &[7u32], |x| x + 1), vec![8]);
        assert_eq!(map_bounded(0, &[1u32, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let caught = std::panic::catch_unwind(|| {
            map_bounded(2, &[1u32, 2, 3], |&x| {
                if x == 2 {
                    panic!("point {x} exploded");
                }
                x
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("point 2 exploded"), "payload lost: {msg:?}");
    }
}

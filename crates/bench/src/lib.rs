//! # llmsched-bench — experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation (§V): the scheduler roster, training pipeline, workload
//! runners, and plain-text/CSV reporting. Each figure/table has a binary
//! (`fig1_characterization`, `fig7_simulation`, …) built on this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod roster;
pub mod runner;
pub mod sweep;
pub mod trace;

pub use report::{jct_summary_cells, write_csv, Table, JCT_SUMMARY_HEADER};
pub use roster::{Policy, TrainedArtifacts};
pub use runner::{run_policy, run_policy_probed, ExperimentConfig};
pub use trace::{export_trace, export_trace_or_die, print_timeseries};

//! The scheduler roster: every policy of Fig. 7/8 plus the ablation
//! variants of Fig. 10, constructed from shared training artifacts.

use llmsched_core::prelude::*;
use llmsched_dag::template::TemplateSet;
use llmsched_schedulers::prelude::*;
use llmsched_sim::scheduler::Scheduler;
use llmsched_workloads::prelude::*;

/// Every scheduling policy appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// First Come First Serve.
    Fcfs,
    /// Shortest Job First.
    Sjf,
    /// Fair scheduling.
    Fair,
    /// Argus-like topology ranking.
    Argus,
    /// Decima-like single-stage dispatch.
    Decima,
    /// Carbyne-like altruistic sharing.
    Carbyne,
    /// LLMSched (this paper).
    LlmSched,
    /// Ablation: LLMSched without the Bayesian network (Fig. 10).
    LlmSchedNoBn,
    /// Ablation: LLMSched without the uncertainty strategy (Fig. 10).
    LlmSchedNoUncertainty,
    /// Plain SRTF on static estimates (analysis helper).
    Srtf,
}

impl Policy {
    /// The seven policies of Fig. 7/8, in the paper's legend order.
    pub const FIG7: [Policy; 7] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Fair,
        Policy::Argus,
        Policy::Decima,
        Policy::Carbyne,
        Policy::LlmSched,
    ];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::Fair => "Fair",
            Policy::Argus => "Argus",
            Policy::Decima => "Decima",
            Policy::Carbyne => "Carbyne",
            Policy::LlmSched => "LLMSched",
            Policy::LlmSchedNoBn => "LLMSched w/o BN",
            Policy::LlmSchedNoUncertainty => "LLMSched w/o uncertainty",
            Policy::Srtf => "SRTF",
        }
    }
}

/// Offline training artifacts shared by all policies: the application
/// templates, the historical priors granted to the baselines, and the
/// trained Bayesian profiler used by LLMSched.
#[derive(Debug, Clone)]
pub struct TrainedArtifacts {
    /// All application templates.
    pub templates: TemplateSet,
    /// Historical per-app duration averages (baseline prior knowledge).
    pub priors: AppPriors,
    /// The trained BN profiler.
    pub profiler: Profiler,
}

impl TrainedArtifacts {
    /// Trains on `per_app` historical jobs of every application.
    pub fn train(per_app: usize, seed: u64) -> Self {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, per_app, seed);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        TrainedArtifacts {
            templates,
            priors,
            profiler,
        }
    }

    /// Builds a policy instance on the default (incremental) path.
    /// `llmsched_cfg` customizes the LLMSched variants (ε, r, MI
    /// estimator); pass `None` for defaults.
    pub fn build(
        &self,
        policy: Policy,
        llmsched_cfg: Option<LlmSchedConfig>,
    ) -> Box<dyn Scheduler> {
        self.build_mode(policy, llmsched_cfg, false)
    }

    /// Builds a policy instance, optionally on the rebuild-per-call
    /// reference path (`rebuild = true`) — used by equivalence tests and
    /// the `scale_throughput` comparison bench.
    pub fn build_mode(
        &self,
        policy: Policy,
        llmsched_cfg: Option<LlmSchedConfig>,
        rebuild: bool,
    ) -> Box<dyn Scheduler> {
        let base = LlmSchedConfig {
            incremental: !rebuild,
            ..llmsched_cfg.unwrap_or_default()
        };
        match (policy, rebuild) {
            (Policy::Fcfs, false) => Box::new(Fcfs::new()),
            (Policy::Fcfs, true) => Box::new(Fcfs::rebuild()),
            (Policy::Fair, false) => Box::new(Fair::new()),
            (Policy::Fair, true) => Box::new(Fair::rebuild()),
            (Policy::Sjf, false) => Box::new(Sjf::new(self.priors.clone())),
            (Policy::Sjf, true) => Box::new(Sjf::rebuild(self.priors.clone())),
            (Policy::Srtf, false) => Box::new(Srtf::new(self.priors.clone())),
            (Policy::Srtf, true) => Box::new(Srtf::rebuild(self.priors.clone())),
            (Policy::Argus, false) => Box::new(Argus::new()),
            (Policy::Argus, true) => Box::new(Argus::rebuild()),
            (Policy::Decima, false) => Box::new(DecimaLike::new(self.priors.clone())),
            (Policy::Decima, true) => Box::new(DecimaLike::rebuild(self.priors.clone())),
            (Policy::Carbyne, false) => Box::new(CarbyneLike::new(self.priors.clone())),
            (Policy::Carbyne, true) => Box::new(CarbyneLike::rebuild(self.priors.clone())),
            (Policy::LlmSched, _) => Box::new(LlmSched::new(self.profiler.clone(), base)),
            (Policy::LlmSchedNoBn, _) => Box::new(LlmSched::new(
                self.profiler.clone(),
                LlmSchedConfig {
                    use_bn: false,
                    ..base
                },
            )),
            (Policy::LlmSchedNoUncertainty, _) => Box::new(LlmSched::new(
                self.profiler.clone(),
                LlmSchedConfig {
                    use_uncertainty: false,
                    ..base
                },
            )),
        }
    }
}

/// Default training-corpus size per application (the paper records the
/// full datasets: 500-1000 queries per app).
pub const DEFAULT_TRAINING_PER_APP: usize = 400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_build() {
        let art = TrainedArtifacts::train(30, 1);
        for p in Policy::FIG7 {
            let s = art.build(p, None);
            assert_eq!(s.name(), p.name());
        }
        let s = art.build(Policy::LlmSchedNoBn, None);
        assert_eq!(s.name(), "LLMSched w/o BN");
    }
}

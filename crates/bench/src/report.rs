//! Plain-text tables and CSV emission for the experiment binaries, plus
//! the shared JCT-summary columns (mean, p50/p95/p99, SLO attainment)
//! result tables report per run.

use std::fmt::Write as _;
use std::path::Path;

use llmsched_dag::time::SimDuration;
use llmsched_sim::metrics::SimResult;

/// A simple aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].len();
            for r in &self.rows {
                width[c] = width[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", cell, w = width[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(r, &width, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Header cells of the per-run JCT summary ([`jct_summary_cells`]).
pub const JCT_SUMMARY_HEADER: [&str; 5] = ["avg_jct_s", "p50_s", "p95_s", "p99_s", "slo_att"];

/// Formats one run's JCT summary — mean, p50/p95/p99 and attainment of a
/// JCT SLO at `slo` — as table cells matching [`JCT_SUMMARY_HEADER`].
pub fn jct_summary_cells(r: &SimResult, slo: SimDuration) -> Vec<String> {
    let p = r.jct_percentiles();
    vec![
        format!("{:.2}", r.avg_jct_secs()),
        format!("{:.2}", p.p50),
        format!("{:.2}", p.p95),
        format!("{:.2}", p.p99),
        format!("{:.3}", r.slo_attainment(slo)),
    ]
}

/// Writes a table's CSV under `results/` (created if missing), returning
/// the path written.
///
/// # Panics
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_csv(table: &Table, name: &str) -> std::path::PathBuf {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["k"]);
        t.row(vec!["a,b"]);
        assert_eq!(t.to_csv(), "k\n\"a,b\"\n");
    }

    #[test]
    fn jct_summary_cells_match_header_arity() {
        use llmsched_dag::ids::{AppId, JobId};
        use llmsched_dag::time::SimTime;
        use llmsched_sim::metrics::{JobOutcome, Utilization};
        let r = SimResult {
            scheduler: "test".into(),
            backend: "cluster/jsq".into(),
            jobs: vec![JobOutcome {
                id: JobId(0),
                app: AppId(0),
                arrival: SimTime::ZERO,
                completion: SimTime::from_secs_f64(4.0),
            }],
            makespan: SimTime::from_secs_f64(4.0),
            sched_calls: 1,
            sched_skipped: 0,
            sched_elided: 0,
            sched_deferred: 0,
            sched_wall: std::time::Duration::ZERO,
            sched_wall_samples: [std::time::Duration::ZERO].into_iter().collect(),
            utilization: Utilization::default(),
            events: 1,
            incomplete: 0,
            par: None,
            timeseries: None,
        };
        let cells = jct_summary_cells(&r, SimDuration::from_secs(5));
        assert_eq!(cells.len(), JCT_SUMMARY_HEADER.len());
        assert_eq!(cells[0], "4.00");
        assert_eq!(cells[4], "1.000");
        // The cells drop straight into a table with the shared header.
        let mut t = Table::new(JCT_SUMMARY_HEADER.to_vec());
        t.row(cells);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}

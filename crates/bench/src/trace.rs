//! Shared trace-export plumbing for the bench bins' `--trace` /
//! `--timeseries` flags: write a probed run's JSONL + Chrome `trace_event`
//! files, self-validate them (the repo has no serde; the validator is the
//! same recursive-descent checker CI's smoke test uses), and render the
//! windowed time-series as a console table.

use llmsched_sim::metrics::SimResult;
use llmsched_sim::telemetry::json::validate;
use llmsched_sim::telemetry::{TimeSeries, TraceRecorder};

/// Writes `{prefix}.jsonl` and `{prefix}.trace.json` from a finished
/// recorder, then validates both outputs: every JSONL line and the Chrome
/// document must parse, and the required observability fields (windowed
/// p99/SLO/goodput rows, decision provenance) must be present. Returns a
/// human-readable error on any failure so callers can exit non-zero.
///
/// `series` is the run's windowed time-series (from
/// [`SimResult::timeseries`]); pass `None` for recorders without a window
/// config — the field checks then skip the window rows. Set
/// `require_provenance` when the probed scheduler collects
/// [`DecisionRecord`](llmsched_sim::telemetry::DecisionRecord)s (LLMSched);
/// baselines like FCFS have no posterior state to explain and emit none.
pub fn export_trace(
    prefix: &str,
    rec: &TraceRecorder,
    series: Option<&TimeSeries>,
    require_provenance: bool,
) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(prefix).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    let jsonl = rec.jsonl(series);
    let chrome = rec.chrome_trace(series);

    for (i, line) in jsonl.lines().enumerate() {
        validate(line).map_err(|e| format!("JSONL line {} invalid: {e}: {line}", i + 1))?;
        if !line.starts_with("{\"type\":\"") {
            return Err(format!("JSONL line {} missing type tag: {line}", i + 1));
        }
    }
    validate(&chrome).map_err(|e| format!("Chrome trace invalid: {e}"))?;

    // Required observability surface (ISSUE 7 acceptance): lifecycle
    // events, per-dispatch provenance, and — when windowed — the
    // p99/SLO/goodput trajectory rows.
    let mut required = vec![
        ("\"type\":\"job_arrived\"", &jsonl),
        ("\"type\":\"job_completed\"", &jsonl),
        ("\"type\":\"sched_invoked\"", &jsonl),
        ("\"traceEvents\"", &chrome),
        ("\"ph\":\"M\"", &chrome),
        ("\"ph\":\"X\"", &chrome),
    ];
    if require_provenance {
        required.extend([
            ("\"type\":\"decision\"", &jsonl),
            ("\"evidence_mask\":", &jsonl),
            ("\"profile_version\":", &jsonl),
            ("\"expected_work\":", &jsonl),
        ]);
    }
    if series.is_some() {
        required.extend([
            ("\"type\":\"window\"", &jsonl),
            ("\"jct_p99\":", &jsonl),
            ("\"slo_attainment\":", &jsonl),
            ("\"goodput\":", &jsonl),
            ("\"name\":\"window\"", &chrome),
        ]);
    }
    for (needle, hay) in required {
        if !hay.contains(needle) {
            return Err(format!("trace output missing required field {needle}"));
        }
    }

    let jsonl_path = format!("{prefix}.jsonl");
    let chrome_path = format!("{prefix}.trace.json");
    std::fs::write(&jsonl_path, &jsonl).map_err(|e| format!("write {jsonl_path}: {e}"))?;
    std::fs::write(&chrome_path, &chrome).map_err(|e| format!("write {chrome_path}: {e}"))?;
    println!(
        "wrote {jsonl_path} ({} events) and {chrome_path} (load at https://ui.perfetto.dev)",
        rec.events().len()
    );
    Ok(())
}

/// Runs [`export_trace`] and exits the process non-zero on failure —
/// the shape every bin's `--trace` flag wants.
pub fn export_trace_or_die(prefix: &str, rec: &TraceRecorder, r: &SimResult, provenance: bool) {
    if let Err(e) = export_trace(prefix, rec, r.timeseries.as_ref(), provenance) {
        eprintln!("FAIL: trace export: {e}");
        std::process::exit(1);
    }
}

/// Prints the windowed time-series as a console table (the `--timeseries`
/// flag): one row per window with the arrival/completion counts, JCT tail,
/// SLO attainment, goodput, and utilization trajectories.
pub fn print_timeseries(ts: &TimeSeries) {
    println!(
        "windowed time-series (width {}s, SLO {}s):",
        ts.width.as_secs_f64(),
        ts.slo.as_secs_f64()
    );
    println!(
        "{:>10} {:>8} {:>8} {:>9} {:>9} {:>7} {:>9} {:>7} {:>8} {:>8}",
        "window",
        "arrive",
        "done",
        "p50 s",
        "p99 s",
        "slo",
        "goodput",
        "depth",
        "reg util",
        "llm util"
    );
    let fmt_q = |q: Option<f64>| q.map_or_else(|| "-".to_string(), |v| format!("{v:.2}"));
    for r in &ts.rows {
        println!(
            "{:>10} {:>8} {:>8} {:>9} {:>9} {:>7.3} {:>9.3} {:>7.1} {:>8.3} {:>8.3}",
            format!("[{:.0},{:.0})", r.start.as_secs_f64(), r.end.as_secs_f64()),
            r.arrivals,
            r.completions,
            fmt_q(r.jct_p50),
            fmt_q(r.jct_p99),
            r.slo_attainment,
            r.goodput,
            r.mean_queue_depth,
            r.regular_util,
            r.llm_util,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsched_dag::ids::{AppId, JobId};
    use llmsched_dag::time::SimTime;
    use llmsched_sim::telemetry::{Probe, ProbeEvent, TraceConfig};

    #[test]
    fn export_rejects_a_stream_without_provenance() {
        let mut rec = TraceRecorder::new(TraceConfig::default());
        rec.record(&ProbeEvent::JobArrived {
            at: SimTime::ZERO,
            job: JobId(0),
            app: AppId(0),
        });
        let err = export_trace("/tmp/llmsched_trace_test_reject", &rec, None, true).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");
    }
}

//! Micro-benchmarks (plain timing harness, no external deps):
//!
//! * `schedule/...` — end-to-end simulation of a small workload per policy
//!   (the per-decision overhead behind Table I, in miniature);
//! * `bn/...` — Bayesian-network inference primitives (posterior marginal
//!   and joint, the inner loops of the profiler);
//! * `uncertainty/...` — the Eq. 6 computation under both MI estimators;
//! * `engine/...` — raw event throughput of the two executor backends.
//!
//! Run with `cargo bench -p llmsched-bench`. Criterion is unavailable in
//! this offline workspace, so each benchmark is timed with
//! [`std::time::Instant`] over a fixed iteration count and reported as
//! min / mean / max wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;

use llmsched_bayes::network::Evidence;
use llmsched_bench::{run_policy, ExperimentConfig, Policy, TrainedArtifacts};
use llmsched_core::prelude::*;
use llmsched_sim::engine::EngineMode;
use llmsched_sim::state::JobRt;
use llmsched_workloads::prelude::*;

/// Times `iters` runs of `f` and prints per-iteration statistics.
fn bench(group: &str, name: &str, iters: usize, mut f: impl FnMut()) {
    // One warm-up pass keeps first-touch allocation out of the numbers.
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{group}/{name:<28} {iters:>3} iters  min {:>9.3} ms  mean {:>9.3} ms  max {:>9.3} ms",
        min * 1e3,
        mean * 1e3,
        max * 1e3
    );
}

fn artifacts() -> TrainedArtifacts {
    TrainedArtifacts::train(60, 1)
}

fn bench_schedulers(art: &TrainedArtifacts) {
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::Carbyne, Policy::LlmSched] {
        bench("schedule", policy.name(), 10, || {
            let exp = ExperimentConfig {
                n_jobs: 30,
                ..ExperimentConfig::paper_default(WorkloadKind::Mixed, 5)
            };
            black_box(run_policy(art, policy, &exp).avg_jct_secs());
        });
    }
}

fn bench_bn() {
    let templates = all_templates();
    let corpus = training_jobs(&[AppKind::SequenceSorting], 300, 2);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
    let p = profiler
        .profile(AppKind::SequenceSorting.app_id())
        .expect("trained");
    let mut ev = Evidence::new();
    ev.insert(0, 1);

    bench("bn", "posterior_marginal", 20, || {
        black_box(p.net().posterior_marginal(9, &ev));
    });
    bench("bn", "posterior_joint3", 20, || {
        black_box(p.net().posterior_joint(&[3, 7, 9], &ev));
    });
    bench("bn", "train_profile_sorting_300", 20, || {
        black_box(Profiler::train(&templates, &corpus, &ProfilerConfig::default()).len());
    });
}

fn bench_uncertainty() {
    let templates = all_templates();
    let corpus = training_jobs(&[AppKind::SequenceSorting], 300, 2);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
    let p = profiler
        .profile(AppKind::SequenceSorting.app_id())
        .expect("trained");
    let job = JobRt::new(corpus[0].clone());
    let ev = Evidence::new();

    bench("uncertainty", "eq6_exact_joint3", 20, || {
        black_box(uncertainty_reduction(
            p,
            &job,
            llmsched_dag::ids::StageId(0),
            &ev,
            MiEstimator::ExactJoint { max_joint: 3 },
        ));
    });
    bench("uncertainty", "eq6_pairwise", 20, || {
        black_box(uncertainty_reduction(
            p,
            &job,
            llmsched_dag::ids::StageId(0),
            &ev,
            MiEstimator::PairwiseSum,
        ));
    });
    bench("uncertainty", "remaining_work", 20, || {
        black_box(remaining_work(p, &job, &ev, true).expected(1.1));
    });
}

fn bench_engine(art: &TrainedArtifacts) {
    for (name, mode) in [
        ("analytic_30jobs", EngineMode::Analytic),
        ("token_level_30jobs", EngineMode::TokenLevel),
    ] {
        bench("engine", name, 10, || {
            let mut cluster = WorkloadKind::ChainLike.default_cluster();
            cluster.mode = mode;
            cluster.iteration_chunk = 8;
            let exp = ExperimentConfig {
                n_jobs: 30,
                mode,
                cluster: Some(cluster),
                ..ExperimentConfig::paper_default(WorkloadKind::ChainLike, 7)
            };
            black_box(run_policy(art, Policy::Fcfs, &exp).events);
        });
    }
}

fn main() {
    // `cargo test` compiles bench targets with --test; don't run the full
    // suite there.
    if std::env::args().any(|a| a == "--test") {
        println!("microbench: skipped under test harness");
        return;
    }
    let art = artifacts();
    bench_schedulers(&art);
    bench_bn();
    bench_uncertainty();
    bench_engine(&art);
}

//! Criterion micro-benchmarks:
//!
//! * `schedule/...` — end-to-end simulation of a small workload per policy
//!   (the per-decision overhead behind Table I, in miniature);
//! * `bn/...` — Bayesian-network inference primitives (posterior marginal
//!   and joint, the inner loops of the profiler);
//! * `uncertainty/...` — the Eq. 6 computation under both MI estimators;
//! * `engine/...` — raw event throughput of the two engine fidelities.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use llmsched_bayes::network::Evidence;
use llmsched_bench::{run_policy, ExperimentConfig, Policy, TrainedArtifacts};
use llmsched_core::prelude::*;
use llmsched_sim::engine::EngineMode;
use llmsched_sim::state::JobRt;
use llmsched_workloads::prelude::*;

fn artifacts() -> TrainedArtifacts {
    TrainedArtifacts::train(60, 1)
}

fn bench_schedulers(c: &mut Criterion) {
    let art = artifacts();
    let mut g = c.benchmark_group("schedule");
    g.sample_size(10);
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::Carbyne, Policy::LlmSched] {
        g.bench_function(policy.name(), |b| {
            b.iter(|| {
                let exp = ExperimentConfig {
                    n_jobs: 30,
                    ..ExperimentConfig::paper_default(WorkloadKind::Mixed, 5)
                };
                black_box(run_policy(&art, policy, &exp).avg_jct_secs())
            })
        });
    }
    g.finish();
}

fn bench_bn(c: &mut Criterion) {
    let templates = all_templates();
    let corpus = training_jobs(&[AppKind::SequenceSorting], 300, 2);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
    let p = profiler.profile(AppKind::SequenceSorting.app_id()).expect("trained");
    let mut ev = Evidence::new();
    ev.insert(0, 1);

    let mut g = c.benchmark_group("bn");
    g.sample_size(20);
    g.bench_function("posterior_marginal", |b| {
        b.iter(|| black_box(p.net().posterior_marginal(9, &ev)))
    });
    g.bench_function("posterior_joint3", |b| {
        b.iter(|| black_box(p.net().posterior_joint(&[3, 7, 9], &ev)))
    });
    g.bench_function("train_profile_sorting_300", |b| {
        b.iter(|| {
            black_box(Profiler::train(&templates, &corpus, &ProfilerConfig::default()).len())
        })
    });
    g.finish();
}

fn bench_uncertainty(c: &mut Criterion) {
    let templates = all_templates();
    let corpus = training_jobs(&[AppKind::SequenceSorting], 300, 2);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
    let p = profiler.profile(AppKind::SequenceSorting.app_id()).expect("trained");
    let job = JobRt::new(corpus[0].clone());
    let ev = Evidence::new();

    let mut g = c.benchmark_group("uncertainty");
    g.sample_size(20);
    g.bench_function("eq6_exact_joint3", |b| {
        b.iter(|| {
            black_box(uncertainty_reduction(
                p,
                &job,
                llmsched_dag::ids::StageId(0),
                &ev,
                MiEstimator::ExactJoint { max_joint: 3 },
            ))
        })
    });
    g.bench_function("eq6_pairwise", |b| {
        b.iter(|| {
            black_box(uncertainty_reduction(
                p,
                &job,
                llmsched_dag::ids::StageId(0),
                &ev,
                MiEstimator::PairwiseSum,
            ))
        })
    });
    g.bench_function("remaining_work", |b| {
        b.iter(|| black_box(remaining_work(p, &job, &ev, true).expected(1.1)))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let art = artifacts();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for (name, mode) in
        [("analytic_30jobs", EngineMode::Analytic), ("token_level_30jobs", EngineMode::TokenLevel)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cluster = WorkloadKind::ChainLike.default_cluster();
                cluster.mode = mode;
                cluster.iteration_chunk = 8;
                let exp = ExperimentConfig {
                    n_jobs: 30,
                    mode,
                    cluster: Some(cluster),
                    ..ExperimentConfig::paper_default(WorkloadKind::ChainLike, 7)
                };
                black_box(run_policy(&art, Policy::Fcfs, &exp).events)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_bn, bench_uncertainty, bench_engine);
criterion_main!(benches);

//! Telemetry equivalence: the observability layer is **observation-only**
//! (DESIGN.md §11). A run with a recording probe attached — full event
//! tracing, windowed aggregation, scheduler decision provenance — must
//! produce the bit-identical schedule of the same run under the default
//! [`NoopProbe`]: same engine event count, same makespan, same completion
//! set, the exact f64 bit pattern of the average JCT. For every policy,
//! every workload mix, the analytic/cluster/disagg backends, and the
//! partitioned engine.
//!
//! The suite also pins the export schema end-to-end: every JSONL line and
//! the Chrome `trace_event` document a real simulation produces must pass
//! the crate's JSON validator and carry the required fields.

use std::sync::OnceLock;

use llmsched::prelude::*;
use llmsched::telemetry::json::validate;
use llmsched::telemetry::DecisionList;
use llmsched_sim::engine::simulate_probed;

fn artifacts() -> &'static (Profiler, AppPriors) {
    static ART: OnceLock<(Profiler, AppPriors)> = OnceLock::new();
    ART.get_or_init(|| {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        (profiler, priors)
    })
}

const POLICIES: [&str; 8] = [
    "FCFS", "SJF", "Fair", "Argus", "Decima", "Carbyne", "SRTF", "LLMSched",
];

fn build(policy: &str) -> Box<dyn Scheduler> {
    let (profiler, priors) = artifacts();
    match policy {
        "FCFS" => Box::new(Fcfs::new()),
        "SJF" => Box::new(Sjf::new(priors.clone())),
        "Fair" => Box::new(Fair::new()),
        "Argus" => Box::new(Argus::new()),
        "Decima" => Box::new(DecimaLike::new(priors.clone())),
        "Carbyne" => Box::new(CarbyneLike::new(priors.clone())),
        "SRTF" => Box::new(Srtf::new(priors.clone())),
        "LLMSched" => Box::new(LlmSched::new(profiler.clone(), LlmSchedConfig::default())),
        _ => unreachable!("unknown policy {policy}"),
    }
}

fn window_cfg() -> WindowConfig {
    WindowConfig::new(SimDuration::from_secs(5), SimDuration::from_secs(60))
}

fn run_off(kind: WorkloadKind, mode: EngineMode, policy: &str, par: Parallelism) -> SimResult {
    let w = generate_workload(kind, 10, 0.9, 11);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    cfg.parallelism = par;
    let mut sched = build(policy);
    simulate(&cfg, &w.templates, w.jobs, &mut sched)
}

fn run_on(
    kind: WorkloadKind,
    mode: EngineMode,
    policy: &str,
    par: Parallelism,
) -> (SimResult, TraceRecorder) {
    let w = generate_workload(kind, 10, 0.9, 11);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    cfg.parallelism = par;
    let mut sched = build(policy);
    let mut rec = TraceRecorder::new(TraceConfig {
        window: Some(window_cfg()),
    });
    let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut sched, &mut rec);
    (r, rec)
}

fn assert_equiv(probed: &SimResult, plain: &SimResult, label: &str) {
    assert_eq!(probed.events, plain.events, "{label}: engine event counts");
    assert_eq!(probed.makespan, plain.makespan, "{label}: makespans");
    assert_eq!(probed.incomplete, plain.incomplete, "{label}: stranded");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(
        completions(probed),
        completions(plain),
        "{label}: completion sets"
    );
    assert_eq!(
        probed.avg_jct_secs().to_bits(),
        plain.avg_jct_secs().to_bits(),
        "{label}: avg JCT bit pattern"
    );
}

/// The full matrix: attaching a recording probe never changes a schedule.
#[test]
fn probed_runs_are_bit_identical_for_every_policy_mix_and_backend() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                let plain = run_off(kind, mode, policy, Parallelism::Off);
                let (probed, rec) = run_on(kind, mode, policy, Parallelism::Off);
                let label = format!("{policy} / {} / {:?}", kind.name(), mode);
                assert_equiv(&probed, &plain, &label);
                assert!(
                    !rec.events().is_empty(),
                    "{label}: enabled probe recorded nothing"
                );
                assert!(
                    probed.timeseries.is_some(),
                    "{label}: probed run lost its time-series"
                );
                assert!(
                    plain.timeseries.is_none(),
                    "{label}: unprobed run grew a time-series"
                );
            }
        }
    }
}

/// Probes must also be inert on the partitioned engine — including the
/// globally re-emitted routing/batch events of the sharded wrapper.
#[test]
fn probed_partitioned_runs_match_the_unprobed_sequential_oracle() {
    for kind in [WorkloadKind::Mixed, WorkloadKind::ChainLike] {
        for mode in [
            EngineMode::Analytic,
            EngineMode::Cluster,
            EngineMode::Disagg,
        ] {
            for policy in ["FCFS", "SRTF", "LLMSched"] {
                let oracle = run_off(kind, mode, policy, Parallelism::Off);
                let par = Parallelism::Partitioned(2);
                let plain_par = run_off(kind, mode, policy, par);
                let (probed_par, rec) = run_on(kind, mode, policy, par);
                let label = format!("{policy} / {} / {:?} / p2", kind.name(), mode);
                assert_equiv(&probed_par, &oracle, &label);
                assert_equiv(&probed_par, &plain_par, &label);
                // ParStats (incl. the new per-shard breakdown) must exist
                // on both, with identical logical (non-timing) fields.
                let (a, b) = (
                    probed_par.par.as_ref().expect("probed par stats"),
                    plain_par.par.as_ref().expect("plain par stats"),
                );
                assert_eq!(a.partitions, b.partitions, "{label}: partitions");
                assert_eq!(a.rounds, b.rounds, "{label}: rounds");
                assert_eq!(a.per_shard.len(), a.partitions, "{label}: shard rows");
                let logical = |s: &ParStats| -> Vec<(u64, u64)> {
                    s.per_shard.iter().map(|x| (x.batches, x.events)).collect()
                };
                assert_eq!(logical(a), logical(b), "{label}: per-shard work");
                assert!(!rec.events().is_empty(), "{label}: no probe events");
            }
        }
    }
}

/// `simulate_probed` with a `NoopProbe` is `simulate`: the disabled path
/// truly is zero-observation (no time-series, no scheduler telemetry).
#[test]
fn noop_probe_is_indistinguishable_from_simulate() {
    for kind in [WorkloadKind::Mixed, WorkloadKind::Planning] {
        let w = generate_workload(kind, 10, 0.9, 11);
        let mut sched = build("LLMSched");
        let mut probe = NoopProbe;
        let r = simulate_probed(
            &kind.default_cluster(),
            &w.templates,
            w.jobs,
            &mut sched,
            &mut probe,
        );
        let plain = run_off(kind, EngineMode::Analytic, "LLMSched", Parallelism::Off);
        assert_equiv(&r, &plain, &format!("noop / {}", kind.name()));
    }
}

/// LLMSched's decision provenance: every dispatch of an LLMSched run is
/// explained by a [`DecisionRecord`] with coherent posterior state.
#[test]
fn llmsched_runs_carry_decision_provenance() {
    let (r, rec) = run_on(
        WorkloadKind::Mixed,
        EngineMode::Analytic,
        "LLMSched",
        Parallelism::Off,
    );
    let decisions: Vec<_> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::Decision(d) => Some(*d),
            _ => None,
        })
        .collect();
    assert!(!decisions.is_empty(), "LLMSched run produced no provenance");
    let known_jobs: std::collections::BTreeSet<_> = r.jobs.iter().map(|j| j.id).collect();
    let mut explore = 0usize;
    for d in &decisions {
        assert!(known_jobs.contains(&d.job), "provenance names unknown job");
        assert!(d.tasks > 0, "a decision must attach at least one task ref");
        assert!(
            d.seq < r.sched_calls + r.sched_skipped,
            "seq beyond the decision-point count"
        );
        assert!(
            d.expected_work.is_finite() && d.expected_work >= 0.0,
            "posterior work estimate must be finite"
        );
        assert!(
            d.interval.0 <= d.interval.1,
            "support interval must be ordered"
        );
        match d.list {
            DecisionList::Explore => {
                explore += 1;
                assert!(
                    d.reduction.is_some(),
                    "explore emissions are Eq. 6 score-driven"
                );
            }
            DecisionList::Exploit | DecisionList::Tail => {
                assert!(d.reduction.is_none(), "non-explore emission with a score");
            }
        }
    }
    assert!(explore > 0, "the exploration list never emitted");
    // Records arrive in engine emission order: seq non-decreasing, rank
    // increasing within an invocation.
    for w in decisions.windows(2) {
        assert!(w[0].seq <= w[1].seq, "provenance seq went backwards");
        if w[0].seq == w[1].seq {
            assert!(w[0].rank < w[1].rank, "provenance rank not increasing");
        }
    }
    // Baselines keep no posterior state and emit none.
    let (_, rec_fcfs) = run_on(
        WorkloadKind::Mixed,
        EngineMode::Analytic,
        "FCFS",
        Parallelism::Off,
    );
    assert!(
        !rec_fcfs
            .events()
            .iter()
            .any(|e| matches!(e, ProbeEvent::Decision(_))),
        "FCFS should have no provenance"
    );
}

/// End-to-end export schema: a real run's JSONL and Chrome trace validate
/// and carry the fields the observability contract promises.
#[test]
fn exports_from_a_real_run_validate_and_carry_required_fields() {
    let (r, rec) = run_on(
        WorkloadKind::Mixed,
        EngineMode::Cluster,
        "LLMSched",
        Parallelism::Off,
    );
    let series = r.timeseries.as_ref();
    let jsonl = rec.jsonl(series);
    for (i, line) in jsonl.lines().enumerate() {
        validate(line).unwrap_or_else(|e| panic!("JSONL line {}: {e}: {line}", i + 1));
        assert!(line.starts_with("{\"type\":\""), "untagged line: {line}");
    }
    for needle in [
        "\"type\":\"job_arrived\"",
        "\"type\":\"task_dispatched\"",
        "\"type\":\"task_finished\"",
        "\"type\":\"stage_completed\"",
        "\"type\":\"job_completed\"",
        "\"type\":\"sched_invoked\"",
        "\"type\":\"decision\"",
        "\"type\":\"batch_admit\"",
        "\"type\":\"batch_drain\"",
        "\"type\":\"routed\"",
        "\"type\":\"util_sample\"",
        "\"type\":\"window\"",
        "\"evidence_mask\":",
        "\"profile_version\":",
        "\"expected_work\":",
        "\"jct_p99\":",
        "\"slo_attainment\":",
        "\"goodput\":",
        "\"mean_queue_depth\":",
    ] {
        assert!(jsonl.contains(needle), "JSONL missing {needle}");
    }
    let chrome = rec.chrome_trace(series);
    validate(&chrome).unwrap_or_else(|e| panic!("chrome trace: {e}"));
    for needle in [
        "\"traceEvents\"",
        "\"ph\":\"M\"",
        "\"ph\":\"X\"",
        "\"ph\":\"i\"",
        "\"ph\":\"C\"",
        "\"name\":\"queue_depth\"",
        "\"name\":\"window\"",
        "\"name\":\"schedule#0\"",
    ] {
        assert!(chrome.contains(needle), "chrome trace missing {needle}");
    }
}

/// The windowed series is a complete account of the run: arrivals and
/// completions across rows sum to the job count, rows are contiguous, and
/// the utilization/depth trajectories stay in range.
#[test]
fn timeseries_accounts_for_every_job() {
    let (r, _rec) = run_on(
        WorkloadKind::Mixed,
        EngineMode::Analytic,
        "LLMSched",
        Parallelism::Off,
    );
    let ts = r.timeseries.as_ref().expect("series");
    assert_eq!(ts.width, window_cfg().width);
    assert_eq!(ts.slo, window_cfg().slo);
    let arrivals: u64 = ts.rows.iter().map(|w| w.arrivals).sum();
    let completions: u64 = ts.rows.iter().map(|w| w.completions).sum();
    assert_eq!(arrivals, r.jobs.len() as u64);
    assert_eq!(completions, r.jobs.len() as u64);
    for (i, row) in ts.rows.iter().enumerate() {
        assert_eq!(row.index, i as u64, "rows must be contiguous");
        assert_eq!(row.start.0, i as u64 * ts.width.0);
        assert!((0.0..=1.0).contains(&row.slo_attainment));
        assert!((0.0..=1.0).contains(&row.regular_util));
        assert!((0.0..=1.0).contains(&row.llm_util));
        assert!(row.mean_queue_depth >= 0.0);
        assert!(row.goodput >= 0.0);
    }
    let last = ts.rows.last().expect("non-empty series");
    assert!(
        last.end.0 >= r.makespan.0,
        "series must cover the full makespan"
    );
}

//! Elision equivalence: capacity-aware decision-point elision (DESIGN.md
//! §13) skips scheduler invocations at which no work-conserving policy
//! could dispatch — ready tasks exist, but no executor of any ready class
//! has a free slot. The skip must be **invisible**: an eliding run and a
//! non-eliding run of the same workload must produce the bit-identical
//! schedule — same engine event count, same makespan, same completion
//! set, the exact f64 bit pattern of the average JCT — *and* identical
//! telemetry: the same [`DecisionRecord`] stream and the same windowed
//! time-series, for every policy, every workload mix, the
//! analytic/cluster/disagg backends, and the partitioned engine (where an
//! elided decision point is an elided *barrier*).
//!
//! The accounting invariant ties the two modes together: every decision
//! point keeps its sequence number whether it ran, was coalesced, or was
//! elided, so `sched_calls + sched_skipped + sched_elided` is the same
//! total either way, and provenance `seq` values match exactly.
//!
//! The suite also pins the second leg of the scheduler-parallelism
//! contract: LLMSched's fork-joined Eq. 6 candidate scoring (worker pool
//! attached via [`ClusterConfig::pool_threads`]) is bit-identical to the
//! inline route.

use std::sync::OnceLock;

use llmsched::prelude::*;
use llmsched::telemetry::DecisionRecord;
use llmsched_sim::engine::simulate_probed;

fn artifacts() -> &'static (Profiler, AppPriors) {
    static ART: OnceLock<(Profiler, AppPriors)> = OnceLock::new();
    ART.get_or_init(|| {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        (profiler, priors)
    })
}

const POLICIES: [&str; 8] = [
    "FCFS", "SJF", "Fair", "Argus", "Decima", "Carbyne", "SRTF", "LLMSched",
];

fn build(policy: &str) -> Box<dyn Scheduler> {
    let (profiler, priors) = artifacts();
    match policy {
        "FCFS" => Box::new(Fcfs::new()),
        "SJF" => Box::new(Sjf::new(priors.clone())),
        "Fair" => Box::new(Fair::new()),
        "Argus" => Box::new(Argus::new()),
        "Decima" => Box::new(DecimaLike::new(priors.clone())),
        "Carbyne" => Box::new(CarbyneLike::new(priors.clone())),
        "SRTF" => Box::new(Srtf::new(priors.clone())),
        // Work-conserving mode: LLMSched early-returns before any RNG
        // draw whenever nothing could dispatch, making it elision-safe
        // (the stock config keeps drawing there and must not be elided —
        // `is_work_conserving` stays false and the engine leaves it
        // alone; covered by `stock_llmsched_is_never_elided`).
        "LLMSched" => Box::new(LlmSched::new(
            profiler.clone(),
            LlmSchedConfig {
                work_conserving: true,
                ..LlmSchedConfig::default()
            },
        )),
        _ => unreachable!("unknown policy {policy}"),
    }
}

fn run(
    kind: WorkloadKind,
    mode: EngineMode,
    policy: &str,
    par: Parallelism,
    elision: bool,
) -> (SimResult, Vec<DecisionRecord>) {
    let w = generate_workload(kind, 10, 0.9, 11);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    cfg.parallelism = par;
    cfg.elision = elision;
    let mut sched = build(policy);
    let mut rec = TraceRecorder::new(TraceConfig {
        window: Some(WindowConfig::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
        )),
    });
    let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut sched, &mut rec);
    let decisions = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::Decision(d) => Some(*d),
            _ => None,
        })
        .collect();
    (r, decisions)
}

fn assert_equiv(on: &SimResult, off: &SimResult, label: &str) {
    assert_eq!(on.events, off.events, "{label}: engine event counts");
    assert_eq!(on.makespan, off.makespan, "{label}: makespans");
    assert_eq!(on.incomplete, off.incomplete, "{label}: stranded jobs");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(completions(on), completions(off), "{label}: completions");
    assert_eq!(
        on.avg_jct_secs().to_bits(),
        off.avg_jct_secs().to_bits(),
        "{label}: avg JCT bit pattern"
    );
    // The accounting invariant: eliding never loses a decision point.
    assert_eq!(off.sched_elided, 0, "{label}: non-eliding run elided");
    assert_eq!(
        on.sched_calls + on.sched_skipped + on.sched_elided,
        off.sched_calls + off.sched_skipped,
        "{label}: decision-point count"
    );
    assert_eq!(on.timeseries, off.timeseries, "{label}: time-series");
}

/// The full sequential matrix: every policy × mix × backend, elision on
/// vs off (coalescing at its default on both sides), plus identical
/// decision provenance.
#[test]
fn elided_runs_are_bit_identical_for_every_policy_mix_and_backend() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    let mut total_elided = 0u64;
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                let (on, dec_on) = run(kind, mode, policy, Parallelism::Off, true);
                let (off, dec_off) = run(kind, mode, policy, Parallelism::Off, false);
                let label = format!("{policy} / {} / {:?}", kind.name(), mode);
                assert_equiv(&on, &off, &label);
                // Elided opportunities had nothing dispatchable, so the
                // DecisionRecord streams match record-for-record: same
                // seq, same at, same posterior state.
                assert_eq!(dec_on, dec_off, "{label}: decision provenance");
                total_elided += on.sched_elided;
            }
        }
    }
    assert!(
        total_elided > 0,
        "elision never engaged across the whole matrix"
    );
}

/// Elision composes with conservative-window partitioned stepping: on
/// and off land on the oracle's bits, and an elided decision point is an
/// elided barrier — the eliding run takes no more barriers than the
/// non-eliding one.
#[test]
fn elision_composes_with_the_partitioned_engine() {
    let mut barriers_saved = 0u64;
    for kind in [WorkloadKind::Mixed, WorkloadKind::Planning] {
        for mode in [EngineMode::Analytic, EngineMode::Disagg] {
            for policy in ["FCFS", "SRTF", "LLMSched"] {
                let (oracle, dec_oracle) = run(kind, mode, policy, Parallelism::Off, false);
                for parts in [2usize, 4] {
                    let par = Parallelism::Partitioned(parts);
                    let (on, dec_on) = run(kind, mode, policy, par, true);
                    let (off, dec_off) = run(kind, mode, policy, par, false);
                    let label = format!("{policy} / {} / {:?} / p{parts}", kind.name(), mode);
                    assert_equiv(&on, &off, &label);
                    assert_equiv(&on, &oracle, &format!("{label} vs oracle"));
                    assert_eq!(dec_on, dec_oracle, "{label}: provenance vs oracle");
                    assert_eq!(dec_off, dec_oracle, "{label}: provenance (off)");
                    // Small default clusters can clamp the shard count to
                    // 1 (sequential path, no ParStats); those combos
                    // still pin result equivalence above.
                    let (b_on, b_off) = (
                        on.par.as_ref().map_or(0, |s| s.barriers),
                        off.par.as_ref().map_or(0, |s| s.barriers),
                    );
                    assert!(
                        b_on <= b_off,
                        "{label}: elision added barriers ({b_on} > {b_off})"
                    );
                    barriers_saved += b_off - b_on;
                }
            }
        }
    }
    assert!(
        barriers_saved > 0,
        "elision never saved a barrier on the partitioned engine"
    );
}

/// A policy that does not declare itself work-conserving is never elided
/// — stock LLMSched advances its ε-draw stream even at capacity-starved
/// decision points, so eliding it would change the schedule; the engine
/// must leave it alone even with elision enabled.
#[test]
fn stock_llmsched_is_never_elided() {
    let (profiler, _) = artifacts();
    for kind in [WorkloadKind::Mixed, WorkloadKind::ChainLike] {
        let w = generate_workload(kind, 10, 0.9, 11);
        let mut cfg = kind.default_cluster();
        cfg.elision = true;
        let mut sched = LlmSched::new(profiler.clone(), LlmSchedConfig::default());
        let r = simulate(&cfg, &w.templates, w.jobs, &mut sched);
        assert_eq!(
            r.sched_elided,
            0,
            "{}: engine elided a non-work-conserving policy",
            kind.name()
        );
    }
}

/// LLMSched's fork-joined Eq. 6 candidate scoring is bit-identical to
/// the inline route: a forced 2-thread worker pool
/// (`pool_threads: Some(2)`) against a forced-off pool
/// (`pool_threads: Some(1)`) lands on the same result bits, and the
/// pooled run actually exercised the parallel path.
#[test]
fn parallel_scoring_matches_sequential_scoring_bit_for_bit() {
    let (profiler, _) = artifacts();
    // A dense burst keeps hundreds of jobs in flight so the Su groups'
    // scoring frontiers clear the parallel gate's minimum width.
    let run = |pool_threads: usize| {
        let w = generate_workload_with(
            WorkloadKind::Mixed,
            120,
            &ArrivalProcess::Poisson { lambda: 12.0 },
            29,
        );
        let mut cfg = WorkloadKind::Mixed.default_cluster();
        cfg.pool_threads = Some(pool_threads);
        let mut sched = LlmSched::new(
            profiler.clone(),
            LlmSchedConfig {
                work_conserving: true,
                ..LlmSchedConfig::default()
            },
        );
        let r = simulate(&cfg, &w.templates, w.jobs, &mut sched);
        (r, sched.par_scored())
    };
    let (pooled, par_scored) = run(2);
    let (inline, inline_scored) = run(1);
    assert_eq!(inline_scored, 0, "pool-less run took the fork-join route");
    assert!(
        par_scored > 0,
        "pooled run never fanned a scoring batch out"
    );
    assert_eq!(pooled.events, inline.events, "event counts");
    assert_eq!(pooled.makespan, inline.makespan, "makespans");
    assert_eq!(
        pooled.avg_jct_secs().to_bits(),
        inline.avg_jct_secs().to_bits(),
        "avg JCT bit pattern"
    );
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(completions(&pooled), completions(&inline), "completions");
}

//! Cross-crate integration tests: the full profile → schedule → simulate
//! pipeline on every workload mix, under every policy.

use llmsched::prelude::*;

fn artifacts() -> (TemplateSet, Profiler, AppPriors) {
    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, 80, 1);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
    let priors = AppPriors::from_training(&corpus, SimDuration::from_millis(20));
    (templates, profiler, priors)
}

fn run(kind: WorkloadKind, sched: &mut dyn Scheduler, n_jobs: usize, seed: u64) -> SimResult {
    let w = generate_workload(kind, n_jobs, 0.9, seed);
    simulate(&kind.default_cluster(), &w.templates, w.jobs, sched)
}

#[test]
fn every_policy_completes_every_mix() {
    let (_, profiler, priors) = artifacts();
    for kind in WorkloadKind::ALL {
        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Fcfs::new()),
            Box::new(Fair::new()),
            Box::new(Sjf::new(priors.clone())),
            Box::new(Srtf::new(priors.clone())),
            Box::new(Argus::new()),
            Box::new(DecimaLike::new(priors.clone())),
            Box::new(CarbyneLike::new(priors.clone())),
            Box::new(LlmSched::new(profiler.clone(), LlmSchedConfig::default())),
        ];
        for sched in policies.iter_mut() {
            let r = run(kind, sched.as_mut(), 25, 7);
            assert_eq!(
                r.incomplete,
                0,
                "{} stranded jobs on {}",
                r.scheduler,
                kind.name()
            );
            assert_eq!(r.jobs.len(), 25);
            // Sanity: completions never precede arrivals.
            for j in &r.jobs {
                assert!(j.completion >= j.arrival);
            }
        }
    }
}

#[test]
fn jct_respects_critical_path_lower_bound() {
    // No schedule can beat the per-job critical path at batch-1 latency.
    let (_, profiler, _) = artifacts();
    let kind = WorkloadKind::Mixed;
    let w = generate_workload(kind, 20, 0.9, 11);
    let per_token = SimDuration::from_millis(20);
    let bounds: std::collections::HashMap<u64, f64> = w
        .jobs
        .iter()
        .map(|j| {
            (
                j.id().0,
                j.critical_path_lower_bound(per_token).as_secs_f64(),
            )
        })
        .collect();
    let mut sched = LlmSched::new(profiler, LlmSchedConfig::default());
    let r = simulate(&kind.default_cluster(), &w.templates, w.jobs, &mut sched);
    for o in &r.jobs {
        let bound = bounds[&o.id.0];
        assert!(
            o.jct().as_secs_f64() >= bound - 1e-6,
            "job {} finished in {:.3}s, below its critical-path bound {:.3}s",
            o.id,
            o.jct().as_secs_f64(),
            bound
        );
    }
}

#[test]
fn same_seed_same_results_across_full_stack() {
    let (_, profiler, _) = artifacts();
    let run_once = |profiler: &Profiler| {
        let mut sched = LlmSched::new(profiler.clone(), LlmSchedConfig::default());
        run(WorkloadKind::Planning, &mut sched, 30, 3)
    };
    let a = run_once(&profiler);
    let b = run_once(&profiler);
    assert_eq!(a.events, b.events);
    assert_eq!(a.avg_jct_secs(), b.avg_jct_secs());
    let jcts_a: Vec<_> = a.jobs.iter().map(|j| (j.id, j.completion)).collect();
    let jcts_b: Vec<_> = b.jobs.iter().map(|j| (j.id, j.completion)).collect();
    assert_eq!(jcts_a, jcts_b);
}

#[test]
fn llmsched_beats_job_agnostic_baselines_on_mixed() {
    // The headline claim at small scale: uncertainty-aware scheduling
    // beats arrival-order and fairness policies on the mixed workload.
    let (_, profiler, _) = artifacts();
    let n = 80;
    let mut fcfs = Fcfs::new();
    let fcfs_jct = run(WorkloadKind::Mixed, &mut fcfs, n, 5).avg_jct_secs();
    let mut fair = Fair::new();
    let fair_jct = run(WorkloadKind::Mixed, &mut fair, n, 5).avg_jct_secs();
    let mut ours = LlmSched::new(profiler, LlmSchedConfig::default());
    let ours_jct = run(WorkloadKind::Mixed, &mut ours, n, 5).avg_jct_secs();
    assert!(
        ours_jct < fcfs_jct,
        "LLMSched ({ours_jct:.1}s) should beat FCFS ({fcfs_jct:.1}s)"
    );
    assert!(
        ours_jct < fair_jct,
        "LLMSched ({ours_jct:.1}s) should beat Fair ({fair_jct:.1}s)"
    );
}

#[test]
fn token_level_and_analytic_agree_roughly() {
    // The testbed stand-in should validate the simulator (paper §V-B):
    // same workload, same policy, JCTs within a modest factor.
    let (_, _, priors) = artifacts();
    let kind = WorkloadKind::ChainLike;
    let w = generate_workload(kind, 25, 0.9, 9);
    let mut cfg = kind.default_cluster();
    let mut sched = Sjf::new(priors.clone());
    let analytic = simulate(&cfg, &w.templates, w.jobs, &mut sched);

    let w = generate_workload(kind, 25, 0.9, 9);
    cfg.mode = EngineMode::TokenLevel;
    cfg.iteration_chunk = 1;
    let mut sched = Sjf::new(priors);
    let token = simulate(&cfg, &w.templates, w.jobs, &mut sched);

    assert_eq!(token.incomplete, 0);
    let ratio = token.avg_jct_secs() / analytic.avg_jct_secs();
    assert!(
        (0.8..1.25).contains(&ratio),
        "token-level vs analytic ratio {ratio:.3} out of range ({:.1}s vs {:.1}s)",
        token.avg_jct_secs(),
        analytic.avg_jct_secs()
    );
}

//! Incremental ≡ rebuild equivalence: the delta-driven scheduling core
//! must produce **bit-identical** schedules to the rebuild-per-call
//! reference path — same engine event count, same completion set with the
//! same completion times, same average JCT — for LLMSched and every
//! baseline, on every workload mix, on all four executor backends.
//!
//! This is the invariant that makes the incremental refactor safe: the
//! persistent indices and beliefs are an *optimization*, never a policy
//! change.

use std::sync::OnceLock;

use llmsched::prelude::*;

fn artifacts() -> &'static (Profiler, AppPriors) {
    static ART: OnceLock<(Profiler, AppPriors)> = OnceLock::new();
    ART.get_or_init(|| {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        (profiler, priors)
    })
}

const POLICIES: [&str; 8] = [
    "FCFS", "SJF", "Fair", "Argus", "Decima", "Carbyne", "SRTF", "LLMSched",
];

fn build(policy: &str, rebuild: bool) -> Box<dyn Scheduler> {
    let (profiler, priors) = artifacts();
    let llmsched = |use_bn: bool, use_uncertainty: bool| {
        Box::new(LlmSched::new(
            profiler.clone(),
            LlmSchedConfig {
                use_bn,
                use_uncertainty,
                incremental: !rebuild,
                ..LlmSchedConfig::default()
            },
        ))
    };
    match (policy, rebuild) {
        ("FCFS", false) => Box::new(Fcfs::new()),
        ("FCFS", true) => Box::new(Fcfs::rebuild()),
        ("SJF", false) => Box::new(Sjf::new(priors.clone())),
        ("SJF", true) => Box::new(Sjf::rebuild(priors.clone())),
        ("Fair", false) => Box::new(Fair::new()),
        ("Fair", true) => Box::new(Fair::rebuild()),
        ("Argus", false) => Box::new(Argus::new()),
        ("Argus", true) => Box::new(Argus::rebuild()),
        ("Decima", false) => Box::new(DecimaLike::new(priors.clone())),
        ("Decima", true) => Box::new(DecimaLike::rebuild(priors.clone())),
        ("Carbyne", false) => Box::new(CarbyneLike::new(priors.clone())),
        ("Carbyne", true) => Box::new(CarbyneLike::rebuild(priors.clone())),
        ("SRTF", false) => Box::new(Srtf::new(priors.clone())),
        ("SRTF", true) => Box::new(Srtf::rebuild(priors.clone())),
        ("LLMSched", _) => llmsched(true, true),
        ("LLMSched w/o BN", _) => llmsched(false, true),
        ("LLMSched w/o uncertainty", _) => llmsched(true, false),
        _ => unreachable!("unknown policy {policy}"),
    }
}

fn run(kind: WorkloadKind, mode: EngineMode, policy: &str, rebuild: bool, seed: u64) -> SimResult {
    let w = generate_workload(kind, 10, 0.9, seed);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    let mut sched = build(policy, rebuild);
    simulate(&cfg, &w.templates, w.jobs, &mut sched)
}

fn assert_equiv(inc: &SimResult, reb: &SimResult, label: &str) {
    assert_eq!(inc.events, reb.events, "{label}: engine event counts");
    assert_eq!(inc.makespan, reb.makespan, "{label}: makespans");
    assert_eq!(inc.incomplete, reb.incomplete, "{label}: stranded jobs");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(
        completions(inc),
        completions(reb),
        "{label}: completion sets"
    );
    // Identical outcomes imply an identical mean, but assert the metric
    // the paper reports explicitly (exact equality: same f64 inputs).
    assert_eq!(inc.avg_jct_secs(), reb.avg_jct_secs(), "{label}: avg JCT");
}

/// The full matrix: every policy × every workload mix × all four executor
/// backends, one fixed seed.
#[test]
fn every_policy_every_mix_every_backend() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::TokenLevel,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                let inc = run(kind, mode, policy, false, 11);
                let reb = run(kind, mode, policy, true, 11);
                let label = format!("{policy} / {} / {:?}", kind.name(), mode);
                assert_equiv(&inc, &reb, &label);
            }
        }
    }
}

/// The incremental path must also observe hidden structure in the same
/// order: a recording wrapper diffs each job's visible stage set per
/// invocation and the per-job reveal sequences must match the rebuild
/// path's exactly.
#[test]
fn reveal_orders_are_identical() {
    use std::collections::HashMap;

    struct RevealRecorder {
        inner: Box<dyn Scheduler>,
        seen: HashMap<JobId, Vec<StageId>>,
    }
    impl Scheduler for RevealRecorder {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn schedule(&mut self, ctx: &SchedContext<'_>) -> Preference {
            for job in &ctx.jobs {
                let rec = self.seen.entry(job.id()).or_default();
                for &s in job.visible_stage_ids() {
                    if !rec.contains(&s) {
                        rec.push(s);
                    }
                }
            }
            self.inner.schedule(ctx)
        }
        fn on_delta(&mut self, d: &SchedDelta) {
            self.inner.on_delta(d);
        }
        fn reset(&mut self) {
            self.inner.reset();
        }
    }

    for kind in [WorkloadKind::Planning, WorkloadKind::ChainLike] {
        let run = |rebuild: bool| {
            let w = generate_workload(kind, 12, 0.9, 29);
            let mut rec = RevealRecorder {
                inner: build("LLMSched", rebuild),
                seen: HashMap::new(),
            };
            let r = simulate(&kind.default_cluster(), &w.templates, w.jobs, &mut rec);
            (r, rec.seen)
        };
        let (ri, seen_i) = run(false);
        let (rr, seen_r) = run(true);
        assert_equiv(&ri, &rr, &format!("LLMSched reveals / {}", kind.name()));
        assert_eq!(seen_i, seen_r, "{}: reveal orders diverged", kind.name());
    }
}

/// Frozen-mode pin: with `ProfileUpdate::Frozen` (the default), the
/// versioned ProfileStore must be **bit-identical to the pre-store
/// frozen profiler** — same engine event counts and the exact f64 bit
/// pattern of the average JCT, recorded from the tree before the
/// online-profiling refactor landed. Every policy × backend is already
/// swept above; this locks the flagship policy's absolute behavior so a
/// store regression cannot hide behind a both-paths-drifted equivalence.
#[test]
fn frozen_profile_update_is_bit_identical_to_pre_store_schedules() {
    // (mix, mode, avg_jct f64 bits, engine events) captured at the
    // pre-refactor commit with the training setup of `artifacts()`.
    let golden = [
        (
            WorkloadKind::Mixed,
            EngineMode::Analytic,
            0x4035d5b500276d2bu64,
            476u64,
        ),
        (
            WorkloadKind::Mixed,
            EngineMode::Cluster,
            0x4035d5b500276d2b,
            476,
        ),
        (
            WorkloadKind::Predefined,
            EngineMode::Analytic,
            0x40402f78eacd68d4,
            651,
        ),
        (
            WorkloadKind::Predefined,
            EngineMode::Cluster,
            0x40402f78eacd68d4,
            651,
        ),
        (
            WorkloadKind::ChainLike,
            EngineMode::Analytic,
            0x402321c952c4c8f2,
            116,
        ),
        (
            WorkloadKind::ChainLike,
            EngineMode::Cluster,
            0x402321c952c4c8f2,
            116,
        ),
        (
            WorkloadKind::Planning,
            EngineMode::Analytic,
            0x401f56f39085f4a2,
            138,
        ),
        (
            WorkloadKind::Planning,
            EngineMode::Cluster,
            0x401f56f39085f4a2,
            138,
        ),
    ];
    let (profiler, _) = artifacts();
    for (kind, mode, bits, events) in golden {
        for explicit_frozen in [false, true] {
            let w = generate_workload(kind, 10, 0.9, 11);
            let mut cfg = kind.default_cluster();
            cfg.mode = mode;
            let scfg = LlmSchedConfig {
                profile_update: if explicit_frozen {
                    ProfileUpdate::Frozen
                } else {
                    LlmSchedConfig::default().profile_update
                },
                ..LlmSchedConfig::default()
            };
            let mut sched = LlmSched::new(profiler.clone(), scfg);
            let r = simulate(&cfg, &w.templates, w.jobs, &mut sched);
            let label = format!("{} / {:?} (explicit={explicit_frozen})", kind.name(), mode);
            assert_eq!(r.events, events, "{label}: engine events moved");
            assert_eq!(
                r.avg_jct_secs().to_bits(),
                bits,
                "{label}: avg JCT bits moved ({} vs golden {})",
                r.avg_jct_secs(),
                f64::from_bits(bits)
            );
        }
    }
}

/// The equivalence invariant must also hold with **online profiling
/// active**: both execution paths absorb the same observation stream at
/// the same decision points, so per-completion snapshot publishing keeps
/// the incremental and rebuild schedules bit-identical.
#[test]
fn online_profile_updates_preserve_incremental_equivalence() {
    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, 60, 1);
    let run = |kind: WorkloadKind, incremental: bool| {
        let store = ProfileStore::train(
            &templates,
            &corpus,
            ProfileStoreConfig {
                update: ProfileUpdate::PerCompletion,
                ..ProfileStoreConfig::default()
            },
        );
        let mut sched = LlmSched::with_store(
            store,
            LlmSchedConfig {
                incremental,
                ..LlmSchedConfig::default()
            },
        );
        let w = generate_workload(kind, 12, 0.9, 23);
        simulate(&kind.default_cluster(), &w.templates, w.jobs, &mut sched)
    };
    for kind in WorkloadKind::ALL {
        let inc = run(kind, true);
        let reb = run(kind, false);
        assert_equiv(&inc, &reb, &format!("LLMSched online / {}", kind.name()));
    }
}

/// Partitioned engine ≡ sequential oracle: the same workload under
/// `Parallelism::Partitioned(n)` must be **bit-identical** to
/// `Parallelism::Off` — same engine event count (including stale pops),
/// same makespan, same completion set, the exact f64 bit pattern of the
/// average JCT — for every policy × mix × the analytic, cluster and
/// disaggregated backends at 2 and 4 partitions. This is the contract of
/// DESIGN.md §10: partitioned stepping is an *execution strategy*, never
/// a semantics change.
#[test]
fn partitioned_engine_matches_sequential_oracle() {
    let run_p = |kind: WorkloadKind, mode: EngineMode, policy: &str, par: Parallelism| {
        let w = generate_workload(kind, 10, 0.9, 11);
        let mut cfg = kind.default_cluster();
        cfg.mode = mode;
        cfg.parallelism = par;
        let mut sched = build(policy, false);
        simulate(&cfg, &w.templates, w.jobs, &mut sched)
    };
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                let seq = run_p(kind, mode, policy, Parallelism::Off);
                assert!(seq.par.is_none(), "sequential runs report no ParStats");
                for parts in [2usize, 4] {
                    let par = run_p(kind, mode, policy, Parallelism::Partitioned(parts));
                    let label = format!("{policy} / {} / {:?} / p{parts}", kind.name(), mode);
                    assert_equiv(&par, &seq, &label);
                    assert_eq!(
                        par.avg_jct_secs().to_bits(),
                        seq.avg_jct_secs().to_bits(),
                        "{label}: avg JCT bit pattern"
                    );
                    // The clamp keeps single-executor clusters sequential.
                    let effective = parts.min(kind.default_cluster().llm_executors);
                    assert_eq!(
                        par.par.is_some(),
                        effective > 1,
                        "{label}: ParStats presence"
                    );
                    if let Some(stats) = &par.par {
                        assert_eq!(stats.partitions, effective, "{label}: partition count");
                        assert!(stats.rounds > 0, "{label}: batch rounds counted");
                    }
                }
            }
        }
    }
}

/// Extra analytic-backend seed sweep, including the LLMSched ablation
/// variants (the exploration machinery exercises the interval index and
/// memoized reductions hardest).
#[test]
fn analytic_seed_sweep_with_ablations() {
    let policies = [
        "LLMSched",
        "LLMSched w/o BN",
        "LLMSched w/o uncertainty",
        "SRTF",
        "Carbyne",
    ];
    for kind in WorkloadKind::ALL {
        for seed in [7u64, 42, 1234] {
            for policy in policies {
                let inc = run(kind, EngineMode::Analytic, policy, false, seed);
                let reb = run(kind, EngineMode::Analytic, policy, true, seed);
                let label = format!("{policy} / {} / seed {seed}", kind.name());
                assert_equiv(&inc, &reb, &label);
            }
        }
    }
}

//! Lookahead-bound safety under randomized workloads (DESIGN.md §12).
//!
//! The partitioned engine advances through *conservative time windows*:
//! after each scheduler barrier it computes a lookahead bound `W` — the
//! minimum of the next arrival, the earliest outstanding regular-task
//! finish, and the executor backend's earliest possible
//! scheduler-relevant change — and replays every queued event strictly
//! before `W` without another barrier. The safety property is that no
//! event inside a window may change scheduler-visible state.
//!
//! These sweeps check the property two ways at once:
//!
//! 1. **Directly**: the engine's windowed replay carries debug
//!    assertions (`"lookahead bound violated"`) that panic the run if
//!    any in-window event mutates state. Tests compile with
//!    `debug_assertions` on, so every randomized case below is a checked
//!    instance of the bound theorem, not just an end-to-end diff.
//! 2. **End-to-end**: each windowed partitioned run must stay
//!    bit-identical to the sequential oracle — same engine event count,
//!    same completion set, the exact f64 bit pattern of the average JCT.
//!
//! Written as seeded-random sweeps (deterministic per case) on the
//! vendored [`rand`] subset, like `tests/properties.rs`. The
//! disaggregated backend gets a dedicated fuzz over its KV-transfer
//! path: the lookahead there must fold in prefill-transit arrivals
//! (`ready_at + decode floor`), which randomized transfer delays and
//! prefill rates exercise hardest.

use std::sync::OnceLock;

use llmsched::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn priors() -> &'static AppPriors {
    static ART: OnceLock<AppPriors> = OnceLock::new();
    ART.get_or_init(|| {
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        AppPriors::from_training(&corpus, ProfilerConfig::default().per_token_b1)
    })
}

fn build(policy: &str) -> Box<dyn Scheduler> {
    match policy {
        "FCFS" => Box::new(Fcfs::new()),
        "SRTF" => Box::new(Srtf::new(priors().clone())),
        "Carbyne" => Box::new(CarbyneLike::new(priors().clone())),
        _ => unreachable!("unknown policy {policy}"),
    }
}

fn assert_bit_identical(par: &SimResult, seq: &SimResult, label: &str) {
    assert_eq!(par.events, seq.events, "{label}: engine event counts");
    assert_eq!(par.makespan, seq.makespan, "{label}: makespans");
    assert_eq!(par.incomplete, seq.incomplete, "{label}: stranded jobs");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(completions(par), completions(seq), "{label}: completions");
    assert_eq!(
        par.avg_jct_secs().to_bits(),
        seq.avg_jct_secs().to_bits(),
        "{label}: avg JCT bit pattern"
    );
}

/// Arbitrary workloads × backends × partition counts: the window bound
/// never overshoots a scheduler-relevant event (debug assertion), and
/// windowed stepping reproduces the sequential oracle bit-for-bit.
#[test]
fn window_bound_is_safe_on_randomized_workloads() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    let policies = ["FCFS", "SRTF", "Carbyne"];
    let mut total_windows = 0u64;
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(8000 + case);
        let kind = WorkloadKind::ALL[rng.gen_range(0..4usize)];
        let n_jobs = rng.gen_range(4..16usize);
        let lambda = 0.3 + rng.gen_range(0..12u32) as f64 * 0.25;
        let seed = rng.gen_range(0..5000u64);
        let mode = modes[rng.gen_range(0..3usize)];
        let policy = policies[rng.gen_range(0..3usize)];
        let parts = rng.gen_range(2..5usize);
        let run = |par: Parallelism| {
            let w = generate_workload(kind, n_jobs, lambda, seed);
            let mut cfg = kind.default_cluster();
            cfg.mode = mode;
            cfg.parallelism = par;
            simulate(&cfg, &w.templates, w.jobs, &mut *build(policy))
        };
        let seq = run(Parallelism::Off);
        let par = run(Parallelism::Partitioned(parts));
        let label = format!(
            "case {case}: {policy} / {} / {mode:?} / λ={lambda} / p{parts}",
            kind.name()
        );
        assert_bit_identical(&par, &seq, &label);
        if let Some(stats) = &par.par {
            assert!(stats.barriers > 0, "{label}: no barriers counted");
            total_windows += stats.windows;
        }
    }
    // The fast path must actually engage across the sweep — a vacuously
    // safe bound (W = now forever) would pass every diff above.
    assert!(total_windows > 0, "window stepping never engaged");
}

/// Disaggregated KV-transfer fuzz: random prefill rates, transfer
/// delays, decode pool sizes and batch capacities. The disagg lookahead
/// is the minimum over in-flight decode batches *and* prefill-transit
/// requests (`ready_at` plus the cheapest possible decode run), so a
/// bound bug here would overshoot exactly when a transfer lands inside
/// the window — the randomized delays make that collision likely.
#[test]
fn disagg_kv_transfer_fuzz() {
    let mut total_windows = 0u64;
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let kind = [
            WorkloadKind::Mixed,
            WorkloadKind::ChainLike,
            WorkloadKind::Planning,
        ][rng.gen_range(0..3usize)];
        let n_jobs = rng.gen_range(4..14usize);
        let seed = rng.gen_range(0..5000u64);
        let latency = LatencyProfile::default();
        let mut spec = ClusterSpec::disaggregated(
            rng.gen_range(2..5usize),
            rng.gen_range(2..8usize),
            latency.clone(),
        );
        {
            let d = spec.disagg.as_mut().expect("disaggregated spec");
            // Tick-granular (µs) fuzz: SimDuration ticks are microseconds.
            d.prefill_per_token = SimDuration(rng.gen_range(100..3000u64));
            d.transfer_delay = SimDuration(rng.gen_range(0..100_000u64));
        }
        spec.validate().expect("fuzzed spec is structurally valid");
        let parts = rng.gen_range(2..4usize);
        let policy = ["FCFS", "SRTF"][rng.gen_range(0..2usize)];
        let run = |par: Parallelism| {
            let w = generate_workload(kind, n_jobs, 0.9, seed);
            let mut cfg = kind.default_cluster();
            cfg.mode = EngineMode::Disagg;
            cfg.spec = Some(spec.clone());
            cfg.parallelism = par;
            simulate(&cfg, &w.templates, w.jobs, &mut *build(policy))
        };
        let seq = run(Parallelism::Off);
        let par = run(Parallelism::Partitioned(parts));
        let label = format!("case {case}: {policy} / {} / fuzzed disagg", kind.name());
        assert_bit_identical(&par, &seq, &label);
        if let Some(stats) = &par.par {
            total_windows += stats.windows;
        }
    }
    assert!(total_windows > 0, "disagg fuzz never took a window");
}

/// Zero-delay KV transfer is the adversarial edge: a prefill that
/// finishes at `t` joins a decode batch at exactly `t`, so the transit
/// term of the lookahead must be inclusive-tight. Pin the edge case
/// explicitly rather than hoping the fuzz lands on it.
#[test]
fn disagg_zero_transfer_delay_edge() {
    let latency = LatencyProfile::default();
    let mut spec = ClusterSpec::disaggregated(2, 4, latency);
    spec.disagg.as_mut().expect("disagg").transfer_delay = SimDuration::ZERO;
    spec.validate().expect("valid");
    for policy in ["FCFS", "SRTF"] {
        let run = |par: Parallelism| {
            let w = generate_workload(WorkloadKind::Mixed, 10, 0.9, 11);
            let mut cfg = WorkloadKind::Mixed.default_cluster();
            cfg.mode = EngineMode::Disagg;
            cfg.spec = Some(spec.clone());
            cfg.parallelism = par;
            simulate(&cfg, &w.templates, w.jobs, &mut *build(policy))
        };
        let seq = run(Parallelism::Off);
        let par = run(Parallelism::Partitioned(2));
        assert_bit_identical(&par, &seq, &format!("{policy} / zero transfer delay"));
    }
}

//! Cross-crate property-based tests: simulator conservation laws, profiler
//! posterior sanity and scheduler-output validity under randomly generated
//! workloads.
//!
//! Written as seeded-random sweeps (deterministic per seed) on the
//! vendored [`rand`] subset instead of `proptest`, which is unavailable in
//! this offline workspace.

use llmsched::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_workload(rng: &mut StdRng) -> (WorkloadKind, usize, u64) {
    // (workload kind, job count, workload seed)
    let kind = WorkloadKind::ALL[rng.gen_range(0..4usize)];
    (kind, rng.gen_range(4..20usize), rng.gen_range(0..5000u64))
}

/// Every arrived job completes, completions are causal, and JCTs are
/// bounded below by each job's critical path — under FCFS on any mix.
#[test]
fn simulator_conservation() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let (kind, n_jobs, seed) = small_workload(&mut rng);
        let w = generate_workload(kind, n_jobs, 0.9, seed);
        let per_token = SimDuration::from_millis(20);
        let bounds: Vec<(u64, f64)> = w
            .jobs
            .iter()
            .map(|j| {
                (
                    j.id().0,
                    j.critical_path_lower_bound(per_token).as_secs_f64(),
                )
            })
            .collect();
        let r = simulate(
            &kind.default_cluster(),
            &w.templates,
            w.jobs,
            &mut Fcfs::new(),
        );
        assert_eq!(r.incomplete, 0, "case {case}: stranded jobs");
        assert_eq!(r.jobs.len(), n_jobs, "case {case}: wrong completion count");
        for o in &r.jobs {
            assert!(o.completion >= o.arrival, "case {case}: acausal completion");
            let bound = bounds
                .iter()
                .find(|(id, _)| *id == o.id.0)
                .expect("job exists")
                .1;
            assert!(
                o.jct().as_secs_f64() >= bound - 1e-6,
                "case {case}: job {} beat its critical path ({} < {bound})",
                o.id,
                o.jct().as_secs_f64()
            );
        }
        // Utilization fractions are well-formed.
        assert!((0.0..=1.0 + 1e-9).contains(&r.utilization.regular_busy_frac));
        assert!((0.0..=1.0 + 1e-9).contains(&r.utilization.llm_slot_frac));
    }
}

/// The two executor backends complete the same job set.
#[test]
fn engines_complete_identically() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let (kind, n_jobs, seed) = small_workload(&mut rng);
        let mut cfg = kind.default_cluster();
        let w = generate_workload(kind, n_jobs, 0.9, seed);
        let a = simulate(&cfg, &w.templates, w.jobs, &mut Fcfs::new());
        cfg.mode = EngineMode::TokenLevel;
        let w = generate_workload(kind, n_jobs, 0.9, seed);
        let t = simulate(&cfg, &w.templates, w.jobs, &mut Fcfs::new());
        assert_eq!(
            a.jobs.len(),
            t.jobs.len(),
            "case {case}: backend job counts differ"
        );
        assert_eq!(t.incomplete, 0, "case {case}: token backend stranded jobs");
    }
}

/// Posterior marginals from trained profiles are normalized and their
/// expectations are non-negative, whatever evidence arrives.
#[test]
fn profiler_posteriors_are_distributions() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let seed = rng.gen_range(0..2000u64);
        let app = AppKind::ALL[rng.gen_range(0..6usize)];
        let templates = all_templates();
        let corpus = training_jobs(&[app], 60, seed);
        let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
        let p = profiler.profile(app.app_id()).expect("trained");
        // Evidence: pretend stage 0 landed in each of its bins.
        for bin in 0..p.discretizers()[0].n_bins() {
            let mut ev = Evidence::new();
            ev.insert(0, bin);
            for s in 1..p.n_stages() {
                let marg = p.net().posterior_marginal(s, &ev);
                let total: f64 = marg.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-6,
                    "case {case}: marginal sums to {total}"
                );
                assert!(marg.iter().all(|&x| (-1e-12..=1.0 + 1e-9).contains(&x)));
                let e = p.discretizers()[s].expectation(&marg);
                assert!(e >= -1e-9, "case {case}: negative expected duration {e}");
            }
        }
    }
}

/// LLMSched's preference lists only ever reference valid, ready,
/// unstarted tasks of the correct executor class.
#[test]
fn llmsched_preferences_are_valid() {
    use llmsched::sim::state::JobRt;

    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, 40, 3);
    let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());

    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let seed = rng.gen_range(0..2000u64);
        let mut sched = LlmSched::new(profiler.clone(), LlmSchedConfig::default());

        // Build a fresh context of 6 just-arrived jobs.
        let w = generate_workload(WorkloadKind::Mixed, 6, 0.9, seed);
        let jobs: Vec<JobRt> = w.jobs.into_iter().map(JobRt::new).collect();
        let latency = LatencyProfile::default();
        let ctx = SchedContext {
            now: SimTime::ZERO,
            jobs: llmsched_sim::scheduler::ActiveJobs::dense(&jobs),
            deltas: &[],
            llm_executors: &[LlmExecutorView {
                index: 0,
                batch_len: 0,
                max_batch: 8,
            }],
            backend: "analytic",
            regular_total: 2,
            regular_busy: 0,
            dispatchable: jobs.iter().map(|j| j.ready_unstarted_tasks()).sum(),
            dispatchable_regular: jobs.iter().map(|j| j.ready_unstarted_by_class().0).sum(),
            dispatchable_llm: jobs.iter().map(|j| j.ready_unstarted_by_class().1).sum(),
            could_dispatch: true,
            pool: None,
            templates: &w.templates,
            latency: &latency,
        };
        let pref = sched.schedule(&ctx);
        for (list, class) in [
            (&pref.regular, ExecutorClass::Regular),
            (&pref.llm, ExecutorClass::Llm),
        ] {
            for tr in list {
                let job = ctx.job(tr.job).expect("job in context");
                assert!(
                    job.stage_ready(tr.stage),
                    "case {case}: stage {} not ready",
                    tr.stage
                );
                let view = job.stage_view(tr.stage).expect("visible");
                assert_eq!(view.kind.class(), Some(class));
                assert!(job.unstarted_tasks(tr.stage).any(|t| t == tr.task));
            }
        }
    }
}

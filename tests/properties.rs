//! Cross-crate property-based tests: simulator conservation laws, profiler
//! posterior sanity and scheduler-output validity under randomly generated
//! workloads.

use llmsched::prelude::*;
use proptest::prelude::*;

fn small_workload_strategy() -> impl Strategy<Value = (u8, u8, u64)> {
    // (workload kind index, job count, seed)
    (0u8..4, 4u8..20, 0u64..5000)
}

fn kind_of(idx: u8) -> WorkloadKind {
    WorkloadKind::ALL[idx as usize]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every arrived job completes, completions are causal, and JCTs are
    /// bounded below by each job's critical path — under FCFS on any mix.
    #[test]
    fn simulator_conservation((kidx, n_jobs, seed) in small_workload_strategy()) {
        let kind = kind_of(kidx);
        let w = generate_workload(kind, n_jobs as usize, 0.9, seed);
        let per_token = SimDuration::from_millis(20);
        let bounds: Vec<(u64, f64)> = w
            .jobs
            .iter()
            .map(|j| (j.id().0, j.critical_path_lower_bound(per_token).as_secs_f64()))
            .collect();
        let r = simulate(&kind.default_cluster(), &w.templates, w.jobs, &mut Fcfs);
        prop_assert_eq!(r.incomplete, 0);
        prop_assert_eq!(r.jobs.len(), n_jobs as usize);
        for o in &r.jobs {
            prop_assert!(o.completion >= o.arrival);
            let bound = bounds.iter().find(|(id, _)| *id == o.id.0).expect("job exists").1;
            prop_assert!(o.jct().as_secs_f64() >= bound - 1e-6);
        }
        // Utilization fractions are well-formed.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization.regular_busy_frac));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization.llm_slot_frac));
    }

    /// The two engine fidelities complete the same job set.
    #[test]
    fn engines_complete_identically((kidx, n_jobs, seed) in small_workload_strategy()) {
        let kind = kind_of(kidx);
        let mut cfg = kind.default_cluster();
        let w = generate_workload(kind, n_jobs as usize, 0.9, seed);
        let a = simulate(&cfg, &w.templates, w.jobs, &mut Fcfs);
        cfg.mode = EngineMode::TokenLevel;
        let w = generate_workload(kind, n_jobs as usize, 0.9, seed);
        let t = simulate(&cfg, &w.templates, w.jobs, &mut Fcfs);
        prop_assert_eq!(a.jobs.len(), t.jobs.len());
        prop_assert_eq!(t.incomplete, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Posterior marginals from trained profiles are normalized and their
    /// expectations are non-negative, whatever evidence arrives.
    #[test]
    fn profiler_posteriors_are_distributions(seed in 0u64..2000, app_idx in 0usize..6) {
        let app = AppKind::ALL[app_idx];
        let templates = all_templates();
        let corpus = training_jobs(&[app], 60, seed);
        let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
        let p = profiler.profile(app.app_id()).expect("trained");
        // Evidence: pretend stage 0 landed in each of its bins.
        for bin in 0..p.discretizers()[0].n_bins() {
            let mut ev = Evidence::new();
            ev.insert(0, bin);
            for s in 1..p.n_stages() {
                let marg = p.net().posterior_marginal(s, &ev);
                let total: f64 = marg.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-6, "marginal sums to {total}");
                prop_assert!(marg.iter().all(|&x| (-1e-12..=1.0 + 1e-9).contains(&x)));
                let e = p.discretizers()[s].expectation(&marg);
                prop_assert!(e >= -1e-9);
            }
        }
    }

    /// LLMSched's preference lists only ever reference valid, ready,
    /// unstarted tasks of the correct executor class.
    #[test]
    fn llmsched_preferences_are_valid(seed in 0u64..2000) {
        use llmsched::sim::state::JobRt;

        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 40, 3);
        let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
        let mut sched = LlmSched::new(profiler, LlmSchedConfig::default());

        // Build a fresh context of 6 just-arrived jobs.
        let w = generate_workload(WorkloadKind::Mixed, 6, 0.9, seed);
        let jobs: Vec<JobRt> = w.jobs.into_iter().map(JobRt::new).collect();
        let latency = LatencyProfile::default();
        let ctx = SchedContext {
            now: SimTime::ZERO,
            jobs: jobs.iter().collect(),
            llm_executors: vec![LlmExecutorView { index: 0, batch_len: 0, max_batch: 8 }],
            regular_total: 2,
            regular_busy: 0,
            templates: &w.templates,
            latency: &latency,
        };
        let pref = sched.schedule(&ctx);
        for (list, class) in
            [(&pref.regular, ExecutorClass::Regular), (&pref.llm, ExecutorClass::Llm)]
        {
            for tr in list {
                let job = ctx.job(tr.job).expect("job in context");
                prop_assert!(job.stage_ready(tr.stage), "stage {} not ready", tr.stage);
                let view = job.stage_view(tr.stage).expect("visible");
                prop_assert_eq!(view.kind.class(), Some(class));
                prop_assert!(job.unstarted_tasks(tr.stage).contains(&tr.task));
            }
        }
    }
}

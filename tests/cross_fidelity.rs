//! Cross-fidelity properties of the executor-backend layer: on the same
//! fixed-seed workload, the analytic, token-level, cluster and
//! disaggregated backends must agree on everything *structural* — which
//! jobs complete and the order in which each job's hidden stages are
//! revealed — even though their timing models differ.
//!
//! Reveal order is observed the only way a policy could observe it: a
//! recording wrapper around FCFS diffs each job's visible stage set at
//! every scheduler invocation. Stage reveals are driven by intra-job
//! completion order (chain iterations reveal sequentially, plan stages
//! reveal their generated stages in one batch), so the per-job sequences
//! must be backend-invariant.

use std::collections::HashMap;

use llmsched::prelude::*;

/// Wraps a scheduler and records, per job, every stage id in the order it
/// first became visible to the policy.
struct RevealRecorder<S> {
    inner: S,
    seen: HashMap<JobId, Vec<StageId>>,
}

impl<S: Scheduler> RevealRecorder<S> {
    fn new(inner: S) -> Self {
        RevealRecorder {
            inner,
            seen: HashMap::new(),
        }
    }
}

impl<S: Scheduler> Scheduler for RevealRecorder<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Preference {
        for job in &ctx.jobs {
            let rec = self.seen.entry(job.id()).or_default();
            for &s in job.visible_stage_ids() {
                if !rec.contains(&s) {
                    rec.push(s);
                }
            }
        }
        self.inner.schedule(ctx)
    }

    // Wrappers must keep the inner policy on the delta stream.
    fn on_delta(&mut self, d: &SchedDelta) {
        self.inner.on_delta(d);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Runs `kind` under FCFS on one backend, returning the result and the
/// recorded per-job reveal sequences.
fn run_recorded(
    kind: WorkloadKind,
    mode: EngineMode,
    n_jobs: usize,
    seed: u64,
) -> (SimResult, HashMap<JobId, Vec<StageId>>) {
    let w = generate_workload(kind, n_jobs, 0.9, seed);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    let mut sched = RevealRecorder::new(Fcfs::new());
    let r = simulate(&cfg, &w.templates, w.jobs, &mut sched);
    (r, sched.seen)
}

/// All four backends — including the cluster and disaggregated
/// prefill/decode serving models — complete the same job set with
/// identical per-job reveal order, across every workload mix, on fixed
/// seeds.
#[test]
fn backends_agree_on_completion_set_and_reveal_order() {
    let modes = [
        (EngineMode::Analytic, "analytic"),
        (EngineMode::TokenLevel, "token-level"),
        (EngineMode::Cluster, "cluster/least-loaded"),
        (EngineMode::Disagg, "disagg/least-loaded"),
    ];
    for kind in WorkloadKind::ALL {
        for seed in [7u64, 42, 1234] {
            let (ra, reveals_a) = run_recorded(kind, EngineMode::Analytic, 18, seed);
            assert_eq!(ra.backend, "analytic");
            let mut ids_a: Vec<u64> = ra.jobs.iter().map(|j| j.id.0).collect();
            ids_a.sort_unstable();

            for (mode, backend_name) in &modes[1..] {
                let (rt, reveals_t) = run_recorded(kind, *mode, 18, seed);
                assert_eq!(&rt.backend, backend_name);
                assert_eq!(
                    ra.incomplete,
                    0,
                    "{} seed {seed}: analytic stranded jobs",
                    kind.name()
                );
                assert_eq!(
                    rt.incomplete,
                    0,
                    "{} seed {seed}: {backend_name} stranded jobs",
                    kind.name()
                );

                // Same completed job set.
                let mut ids_t: Vec<u64> = rt.jobs.iter().map(|j| j.id.0).collect();
                ids_t.sort_unstable();
                assert_eq!(
                    ids_a,
                    ids_t,
                    "{} seed {seed}: completed job sets differ on {backend_name}",
                    kind.name()
                );

                // Identical reveal order for every job observed by both.
                assert_eq!(
                    reveals_a.len(),
                    reveals_t.len(),
                    "{} seed {seed}: observed job sets differ on {backend_name}",
                    kind.name()
                );
                for (id, seq_a) in &reveals_a {
                    let seq_t = reveals_t.get(id).unwrap_or_else(|| {
                        panic!(
                            "{} seed {seed}: job {id} unseen on {backend_name}",
                            kind.name()
                        )
                    });
                    assert_eq!(
                        seq_a,
                        seq_t,
                        "{} seed {seed}: reveal order diverged for job {id} on {backend_name}",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// The cluster backend with a homogeneous derived spec and least-loaded
/// routing is the analytic model under a different placement code path:
/// per-job completion times must agree to the microsecond.
#[test]
fn homogeneous_cluster_backend_matches_analytic_timing() {
    let (ra, _) = run_recorded(WorkloadKind::Predefined, EngineMode::Analytic, 18, 21);
    let (rc, _) = run_recorded(WorkloadKind::Predefined, EngineMode::Cluster, 18, 21);
    let by_id = |r: &SimResult| -> HashMap<u64, SimTime> {
        r.jobs.iter().map(|j| (j.id.0, j.completion)).collect()
    };
    let (ca, cc) = (by_id(&ra), by_id(&rc));
    assert_eq!(ca.len(), cc.len());
    for (id, at) in &ca {
        assert_eq!(
            at, &cc[id],
            "job {id}: homogeneous cluster completion diverged from analytic"
        );
    }
}

/// Disaggregation changes timing boundedly: prefill queueing and KV
/// transfer add latency, decode-only batches remove the prefill
/// surcharge. The average JCT must stay within a plausibility band of
/// the aggregated analytic model, not collapse or explode.
#[test]
fn disagg_timing_stays_within_plausibility_band() {
    let (ra, _) = run_recorded(WorkloadKind::Mixed, EngineMode::Analytic, 18, 99);
    let (rd, _) = run_recorded(WorkloadKind::Mixed, EngineMode::Disagg, 18, 99);
    let ratio = rd.avg_jct_secs() / ra.avg_jct_secs();
    assert!(
        (0.5..2.5).contains(&ratio),
        "disagg JCT ratio {ratio:.3} outside plausibility band ({:.1}s vs {:.1}s)",
        rd.avg_jct_secs(),
        ra.avg_jct_secs()
    );
}

/// Timing may differ between fidelities, but only boundedly: token-level
/// quantizes decode to iteration boundaries, it does not change the work.
#[test]
fn backend_timing_stays_within_quantization_bounds() {
    let (ra, _) = run_recorded(WorkloadKind::Mixed, EngineMode::Analytic, 18, 99);
    let (rt, _) = run_recorded(WorkloadKind::Mixed, EngineMode::TokenLevel, 18, 99);
    let ratio = rt.avg_jct_secs() / ra.avg_jct_secs();
    assert!(
        (0.7..1.4).contains(&ratio),
        "cross-fidelity JCT ratio {ratio:.3} outside plausibility band ({:.1}s vs {:.1}s)",
        rt.avg_jct_secs(),
        ra.avg_jct_secs()
    );
}

/// Per-job completion work is identical across backends: every completed
/// job ran exactly its spec's tasks, whatever the batching model.
#[test]
fn per_job_jct_ordering_is_mostly_preserved() {
    // Kendall-tau-style check: the two backends should rank jobs by JCT
    // almost identically on a chain-like mix (discordant pairs can only
    // come from iteration-boundary quantization).
    let (ra, _) = run_recorded(WorkloadKind::ChainLike, EngineMode::Analytic, 18, 5);
    let (rt, _) = run_recorded(WorkloadKind::ChainLike, EngineMode::TokenLevel, 18, 5);
    let jct = |r: &SimResult| -> HashMap<u64, f64> {
        r.jobs
            .iter()
            .map(|j| (j.id.0, j.jct().as_secs_f64()))
            .collect()
    };
    let (ja, jt) = (jct(&ra), jct(&rt));
    let ids: Vec<u64> = ja.keys().copied().collect();
    let mut concordant = 0usize;
    let mut total = 0usize;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let da = ja[&a] - ja[&b];
            let dt = jt[&a] - jt[&b];
            total += 1;
            concordant += usize::from(da * dt >= 0.0);
        }
    }
    let frac = concordant as f64 / total as f64;
    assert!(
        frac > 0.85,
        "JCT orderings diverged: only {frac:.2} of pairs concordant"
    );
}

//! Coalescing equivalence: scheduler invocation coalescing (DESIGN.md
//! §12) skips decision points at which no job has a ready, unstarted
//! task, carrying the accumulated deltas to the next real invocation.
//! The skip must be **invisible**: a coalesced run and an uncoalesced
//! run of the same workload must produce the bit-identical schedule —
//! same engine event count, same makespan, same completion set, the
//! exact f64 bit pattern of the average JCT — *and* identical telemetry:
//! the same [`DecisionRecord`] stream (same `seq`, same `at`, same
//! posterior state) and the same windowed [`TimeSeries`], for every
//! policy, every workload mix, the analytic/cluster/disagg backends,
//! and the partitioned engine.
//!
//! The accounting invariant ties the two modes together: every decision
//! point keeps its sequence number whether it ran, was skipped, or was
//! elided (capacity-aware elision stays at its default here, so both
//! sides may elide), so `sched_calls + sched_skipped + sched_elided` is
//! the same total either way, and provenance `seq` values match exactly.

use std::sync::OnceLock;

use llmsched::prelude::*;
use llmsched::telemetry::DecisionRecord;
use llmsched_sim::engine::simulate_probed;

fn artifacts() -> &'static (Profiler, AppPriors) {
    static ART: OnceLock<(Profiler, AppPriors)> = OnceLock::new();
    ART.get_or_init(|| {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        (profiler, priors)
    })
}

const POLICIES: [&str; 8] = [
    "FCFS", "SJF", "Fair", "Argus", "Decima", "Carbyne", "SRTF", "LLMSched",
];

fn build(policy: &str) -> Box<dyn Scheduler> {
    let (profiler, priors) = artifacts();
    match policy {
        "FCFS" => Box::new(Fcfs::new()),
        "SJF" => Box::new(Sjf::new(priors.clone())),
        "Fair" => Box::new(Fair::new()),
        "Argus" => Box::new(Argus::new()),
        "Decima" => Box::new(DecimaLike::new(priors.clone())),
        "Carbyne" => Box::new(CarbyneLike::new(priors.clone())),
        "SRTF" => Box::new(Srtf::new(priors.clone())),
        "LLMSched" => Box::new(LlmSched::new(profiler.clone(), LlmSchedConfig::default())),
        _ => unreachable!("unknown policy {policy}"),
    }
}

fn run(
    kind: WorkloadKind,
    mode: EngineMode,
    policy: &str,
    par: Parallelism,
    coalescing: bool,
) -> (SimResult, Vec<DecisionRecord>) {
    let w = generate_workload(kind, 10, 0.9, 11);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    cfg.parallelism = par;
    cfg.coalescing = coalescing;
    let mut sched = build(policy);
    let mut rec = TraceRecorder::new(TraceConfig {
        window: Some(WindowConfig::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
        )),
    });
    let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut sched, &mut rec);
    let decisions = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::Decision(d) => Some(*d),
            _ => None,
        })
        .collect();
    (r, decisions)
}

fn assert_equiv(on: &SimResult, off: &SimResult, label: &str) {
    assert_eq!(on.events, off.events, "{label}: engine event counts");
    assert_eq!(on.makespan, off.makespan, "{label}: makespans");
    assert_eq!(on.incomplete, off.incomplete, "{label}: stranded jobs");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(completions(on), completions(off), "{label}: completions");
    assert_eq!(
        on.avg_jct_secs().to_bits(),
        off.avg_jct_secs().to_bits(),
        "{label}: avg JCT bit pattern"
    );
    // The accounting invariant: neither skipping nor eliding loses a
    // decision point. (A point coalesced on one side may instead be
    // elided on the other — `ready_unstarted == 0` implies
    // `!could_dispatch` — so only the three-way total is comparable.)
    assert_eq!(off.sched_skipped, 0, "{label}: uncoalesced run skipped");
    assert_eq!(
        on.sched_calls + on.sched_skipped + on.sched_elided,
        off.sched_calls + off.sched_elided,
        "{label}: decision-point count"
    );
    // Identical windowed trajectories (WindowRow is PartialEq over every
    // field, including the f64 utilization/goodput values).
    assert_eq!(on.timeseries, off.timeseries, "{label}: time-series");
}

/// The full sequential matrix: every policy × mix × backend, coalescing
/// on vs off, plus identical decision provenance.
#[test]
fn coalesced_runs_are_bit_identical_for_every_policy_mix_and_backend() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    let mut total_skipped = 0u64;
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                let (on, dec_on) = run(kind, mode, policy, Parallelism::Off, true);
                let (off, dec_off) = run(kind, mode, policy, Parallelism::Off, false);
                let label = format!("{policy} / {} / {:?}", kind.name(), mode);
                assert_equiv(&on, &off, &label);
                // The DecisionRecord streams match record-for-record:
                // same seq, same at, same posterior state. Skipped
                // opportunities had nothing dispatchable, so neither mode
                // emits provenance there.
                assert_eq!(dec_on, dec_off, "{label}: decision provenance");
                total_skipped += on.sched_skipped;
            }
        }
    }
    assert!(
        total_skipped > 0,
        "coalescing never engaged across the whole matrix"
    );
}

/// Coalescing composes with conservative-window partitioned stepping:
/// all four flag combinations land on the same bits.
#[test]
fn coalescing_is_inert_on_the_partitioned_engine() {
    for kind in [WorkloadKind::Mixed, WorkloadKind::Planning] {
        for mode in [EngineMode::Analytic, EngineMode::Disagg] {
            for policy in ["FCFS", "SRTF", "LLMSched"] {
                let (oracle, dec_oracle) = run(kind, mode, policy, Parallelism::Off, false);
                for parts in [2usize, 4] {
                    let par = Parallelism::Partitioned(parts);
                    let (on, dec_on) = run(kind, mode, policy, par, true);
                    let (off, dec_off) = run(kind, mode, policy, par, false);
                    let label = format!("{policy} / {} / {:?} / p{parts}", kind.name(), mode);
                    assert_equiv(&on, &off, &label);
                    assert_equiv(&on, &oracle, &format!("{label} vs oracle"));
                    assert_eq!(dec_on, dec_oracle, "{label}: provenance vs oracle");
                    assert_eq!(dec_off, dec_oracle, "{label}: provenance (off)");
                }
            }
        }
    }
}

/// `sched_calls` still counts real invocations only: the uncoalesced
/// count is an upper bound the coalesced run approaches from below, and
/// a busy single-arrival burst (everything dispatchable at once) skips
/// nothing it shouldn't — decisions are never deferred past a point at
/// which work could have started.
#[test]
fn coalescing_only_skips_empty_decision_points() {
    for kind in WorkloadKind::ALL {
        let (on, _) = run(kind, EngineMode::Analytic, "FCFS", Parallelism::Off, true);
        let (off, _) = run(kind, EngineMode::Analytic, "FCFS", Parallelism::Off, false);
        assert!(
            on.sched_calls <= off.sched_calls,
            "{}: coalescing added invocations",
            kind.name()
        );
        // Dispatch moments are schedule-defining; they survive verbatim
        // (already pinned bit-identically above, restated as the metric
        // the contract is about).
        assert_eq!(
            on.avg_jct_secs().to_bits(),
            off.avg_jct_secs().to_bits(),
            "{}: schedule moved",
            kind.name()
        );
    }
}

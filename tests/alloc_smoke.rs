//! Allocation-count smoke test for the hot-path memory layout.
//!
//! The arena/SoA refactor's whole point is that steady-state simulation
//! does not churn the allocator: scheduler context projection, ready/
//! visible queries, event queueing and the completion cascades all run on
//! preallocated or borrowed storage. This harness installs a counting
//! global allocator, runs a 1k-job simulation, and asserts the
//! allocations *per simulated job* stay under a budget — a regression
//! here means someone put a per-event `Vec`/`HashMap` back on the hot
//! path.
//!
//! The bench bin `alloc_probe` (crates/bench/src/bin/alloc_probe.rs)
//! mirrors this harness (same allocator shim, corpus, cluster shape and
//! workload seed) to print per-scheduler numbers for diagnosis — keep
//! the two in sync when changing the measurement methodology.
//!
//! The budget is deliberately loose (≈3× the measured value at the time
//! of writing) so it only trips on structural regressions, not on
//! allocator-pattern noise: growth of persistent caches (belief bands per
//! evidence state, preference lists) legitimately allocates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic
// with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn thousand_job_sim_stays_under_allocation_budget() {
    use llmsched::prelude::*;
    use llmsched::{LlmSched, LlmSchedConfig};

    // Setup (training, workload generation) may allocate freely.
    let templates = all_templates();
    let corpus = training_jobs(&AppKind::ALL, 100, 1);
    let profiler =
        llmsched::Profiler::train(&templates, &corpus, &llmsched::ProfilerConfig::default());
    let n_jobs = 1_000usize;
    let cluster = ClusterConfig {
        regular_executors: 32,
        llm_executors: 8,
        ..WorkloadKind::Mixed.default_cluster()
    };

    let run = |sched: &mut dyn llmsched::sim::scheduler::Scheduler| -> f64 {
        let w = generate_workload(WorkloadKind::Mixed, n_jobs, 4.0, 42);
        let before = alloc_count();
        let r = llmsched::sim::engine::simulate(&cluster, &w.templates, w.jobs, sched);
        let during = alloc_count() - before;
        assert_eq!(r.incomplete, 0, "smoke sim must complete");
        during as f64 / n_jobs as f64
    };

    // Tier 1 — the engine + a delta-driven baseline: this is the pure
    // hot path (slab job table, SoA runtime state, indexed event core,
    // borrowed context projection). Measured ≈21 allocs/job; the budget
    // trips if a per-event Vec/HashMap lands back in the engine.
    let fcfs = run(&mut llmsched::schedulers::basic::Fcfs::new());
    assert!(
        fcfs < 100.0,
        "engine hot-path churn regressed: {fcfs:.0} allocs/job under FCFS (budget 100)"
    );

    // Tier 1b — the same hot path under the partitioned engine: shard
    // workers reuse per-round batch/effect buffers, so partitioning must
    // not reintroduce per-event churn (thread spawns are per *round*, not
    // per event, and rounds are rare relative to events).
    let par_cluster = ClusterConfig {
        parallelism: Parallelism::Partitioned(2),
        ..cluster.clone()
    };
    let run_par = |sched: &mut dyn llmsched::sim::scheduler::Scheduler| -> f64 {
        let w = generate_workload(WorkloadKind::Mixed, n_jobs, 4.0, 42);
        let before = alloc_count();
        let r = llmsched::sim::engine::simulate(&par_cluster, &w.templates, w.jobs, sched);
        let during = alloc_count() - before;
        assert_eq!(r.incomplete, 0, "partitioned smoke sim must complete");
        assert!(r.par.is_some(), "partitioned path must be active");
        during as f64 / n_jobs as f64
    };
    let fcfs_par = run_par(&mut llmsched::schedulers::basic::Fcfs::new());
    assert!(
        fcfs_par < 100.0,
        "partitioned hot-path churn regressed: {fcfs_par:.0} allocs/job under FCFS (budget 100)"
    );

    // Tier 2 — full LLMSched (incremental): posterior factor tables and
    // per-evidence caches legitimately allocate (≈2.3k allocs/job
    // measured), but the rebuild-per-call reference sits at ≈13k — the
    // budget catches a silent fallback to rebuild-scale recomputation.
    let full = run(&mut LlmSched::new(profiler, LlmSchedConfig::default()));
    assert!(
        full < 5_000.0,
        "LLMSched allocation churn regressed: {full:.0} allocs/job (budget 5000); \
         did the belief/evidence caches stop being shared?"
    );
}

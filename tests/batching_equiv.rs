//! Batching equivalence: bounded-staleness decision batching (DESIGN.md
//! §14) defers decision points that fall within ε simulated seconds of
//! the previous scheduler invocation and folds them into one batched
//! invocation at the horizon edge. The contract has two legs:
//!
//! 1. **ε = 0 is exact.** `decision_horizon: Some(0.0)` (and `None`, the
//!    default) must produce the bit-identical schedule to a
//!    pre-batching engine — same event count, same makespan, same
//!    completion set, the exact f64 bit pattern of the average JCT,
//!    the same [`DecisionRecord`] provenance stream and windowed
//!    time-series — for every policy, every workload mix, the
//!    analytic/cluster/disagg backends, and the partitioned engine.
//!    No decision point may be deferred at ε = 0.
//!
//! 2. **ε > 0 is a deterministic relaxation.** The relaxed schedule is
//!    still a function of (workload, cluster, ε) alone: sequential and
//!    partitioned runs of the same relaxed configuration land on the
//!    same bits, every deferred decision point on the partitioned path
//!    is a deleted barrier, and the avg-JCT drift against the exact
//!    schedule stays bounded (the tight 0.5% production gate lives in
//!    `scale_throughput --check`; this suite pins a loose sanity bound
//!    so a broken fold shows up as a test failure, not a bench report).
//!
//! The accounting invariant ties the modes together: every decision
//! point keeps its sequence number whether it ran, was coalesced,
//! elided, or deferred, so the four-way total
//! `sched_calls + sched_skipped + sched_elided + sched_deferred` is
//! conserved, and the `folded` counts on [`ProbeEvent::SchedInvoked`]
//! records sum to exactly the deferred total.

use std::sync::OnceLock;

use llmsched::prelude::*;
use llmsched::telemetry::DecisionRecord;
use llmsched_sim::engine::simulate_probed;

fn artifacts() -> &'static (Profiler, AppPriors) {
    static ART: OnceLock<(Profiler, AppPriors)> = OnceLock::new();
    ART.get_or_init(|| {
        let templates = all_templates();
        let corpus = training_jobs(&AppKind::ALL, 60, 1);
        let cfg = ProfilerConfig::default();
        let profiler = Profiler::train(&templates, &corpus, &cfg);
        let priors = AppPriors::from_training(&corpus, cfg.per_token_b1);
        (profiler, priors)
    })
}

const POLICIES: [&str; 8] = [
    "FCFS", "SJF", "Fair", "Argus", "Decima", "Carbyne", "SRTF", "LLMSched",
];

fn build(policy: &str) -> Box<dyn Scheduler> {
    let (profiler, priors) = artifacts();
    match policy {
        "FCFS" => Box::new(Fcfs::new()),
        "SJF" => Box::new(Sjf::new(priors.clone())),
        "Fair" => Box::new(Fair::new()),
        "Argus" => Box::new(Argus::new()),
        "Decima" => Box::new(DecimaLike::new(priors.clone())),
        "Carbyne" => Box::new(CarbyneLike::new(priors.clone())),
        "SRTF" => Box::new(Srtf::new(priors.clone())),
        "LLMSched" => Box::new(LlmSched::new(
            profiler.clone(),
            LlmSchedConfig {
                work_conserving: true,
                ..LlmSchedConfig::default()
            },
        )),
        _ => unreachable!("unknown policy {policy}"),
    }
}

/// One probed run at the given horizon. `dense` switches to a workload
/// with back-to-back decision points so that ε > 0 actually defers;
/// ε = 0 equivalence is indifferent to density, and the exact matrix is
/// big enough that it wants the small workload.
fn run(
    kind: WorkloadKind,
    mode: EngineMode,
    policy: &str,
    par: Parallelism,
    horizon: Option<f64>,
    dense: bool,
) -> (SimResult, Vec<DecisionRecord>, u64) {
    let (n, lambda) = if dense { (40, 6.0) } else { (10, 0.9) };
    let w = generate_workload_with(kind, n, &ArrivalProcess::Poisson { lambda }, 11);
    let mut cfg = kind.default_cluster();
    cfg.mode = mode;
    cfg.parallelism = par;
    cfg.decision_horizon = horizon;
    let mut sched = build(policy);
    let mut rec = TraceRecorder::new(TraceConfig {
        window: Some(WindowConfig::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
        )),
    });
    let r = simulate_probed(&cfg, &w.templates, w.jobs, &mut sched, &mut rec);
    let mut folded_total = 0u64;
    let decisions = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::Decision(d) => Some(*d),
            ProbeEvent::SchedInvoked { folded, .. } => {
                folded_total += u64::from(*folded);
                None
            }
            _ => None,
        })
        .collect();
    (r, decisions, folded_total)
}

fn assert_equiv(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.events, b.events, "{label}: engine event counts");
    assert_eq!(a.makespan, b.makespan, "{label}: makespans");
    assert_eq!(a.incomplete, b.incomplete, "{label}: stranded jobs");
    let completions = |r: &SimResult| {
        let mut v: Vec<_> = r.jobs.iter().map(|j| (j.id, j.completion)).collect();
        v.sort();
        v
    };
    assert_eq!(completions(a), completions(b), "{label}: completions");
    assert_eq!(
        a.avg_jct_secs().to_bits(),
        b.avg_jct_secs().to_bits(),
        "{label}: avg JCT bit pattern"
    );
    assert_eq!(a.timeseries, b.timeseries, "{label}: time-series");
}

/// Leg 1, the full matrix: every policy × mix × backend ×
/// {sequential, Partitioned(2)}. `Some(0.0)` vs the `None` default must
/// be bit-identical end to end — results, decision provenance,
/// time-series — and neither side may defer a single decision point.
#[test]
fn horizon_zero_is_bit_identical_for_every_policy_mix_backend_and_engine() {
    let modes = [
        EngineMode::Analytic,
        EngineMode::Cluster,
        EngineMode::Disagg,
    ];
    for kind in WorkloadKind::ALL {
        for mode in modes {
            for policy in POLICIES {
                for par in [Parallelism::Off, Parallelism::Partitioned(2)] {
                    let (zero, dec_zero, _) = run(kind, mode, policy, par, Some(0.0), false);
                    let (off, dec_off, _) = run(kind, mode, policy, par, None, false);
                    let label = format!("{policy} / {} / {mode:?} / {par:?}", kind.name());
                    assert_equiv(&zero, &off, &label);
                    assert_eq!(dec_zero, dec_off, "{label}: decision provenance");
                    assert_eq!(zero.sched_deferred, 0, "{label}: ε=0 deferred");
                    assert_eq!(off.sched_deferred, 0, "{label}: default deferred");
                    assert_eq!(
                        zero.sched_calls + zero.sched_skipped + zero.sched_elided,
                        off.sched_calls + off.sched_skipped + off.sched_elided,
                        "{label}: decision-point count"
                    );
                }
            }
        }
    }
}

/// Leg 2a: the relaxation is deterministic and engine-independent — a
/// relaxed sequential run and a relaxed partitioned run of the same
/// configuration land on the same bits, with identical provenance.
/// Deferred decision points are deleted barriers *in aggregate*: each
/// batched invocation replaces every decision point folded into it, so
/// a window that folds k points trades k barriers for 1. Windows that
/// fold a single point are net-zero, and because ε > 0 genuinely moves
/// the schedule, downstream decision patterns shift — individual combos
/// can come out a few barriers worse. The suite therefore asserts the
/// *net* saving across the matrix is positive, not per-combo
/// monotonicity (the production-scale numbers live in BENCH_scale.json,
/// where dense folding deletes barriers by the hundred-thousand).
#[test]
fn relaxed_runs_are_deterministic_and_delete_barriers() {
    const EPS: f64 = 0.2;
    let mut total_deferred = 0u64;
    let mut barriers_saved = 0i64;
    for kind in [WorkloadKind::Mixed, WorkloadKind::Planning] {
        for mode in [EngineMode::Analytic, EngineMode::Disagg] {
            for policy in ["FCFS", "SRTF", "LLMSched"] {
                let label = format!("{policy} / {} / {mode:?}", kind.name());
                let (seq, dec_seq, _) = run(kind, mode, policy, Parallelism::Off, Some(EPS), true);
                let par = Parallelism::Partitioned(2);
                let (part, dec_part, _) = run(kind, mode, policy, par, Some(EPS), true);
                assert_equiv(&seq, &part, &label);
                assert_eq!(dec_seq, dec_part, "{label}: relaxed provenance");
                assert_eq!(
                    seq.sched_deferred, part.sched_deferred,
                    "{label}: deferral counts"
                );
                assert_eq!(seq.incomplete, 0, "{label}: relaxed run stranded jobs");
                total_deferred += seq.sched_deferred;
                let (exact, _, _) = run(kind, mode, policy, par, None, true);
                let (b_rel, b_exact) = (
                    part.par.as_ref().map_or(0, |s| s.barriers),
                    exact.par.as_ref().map_or(0, |s| s.barriers),
                );
                barriers_saved += b_exact as i64 - b_rel as i64;
                // Loose drift sanity (the 0.5% gate is scale_throughput's):
                // a broken fold that strands or starves jobs blows far
                // past 10% immediately.
                let drift =
                    (seq.avg_jct_secs() - exact.avg_jct_secs()).abs() / exact.avg_jct_secs();
                assert!(
                    drift < 0.10,
                    "{label}: relaxed avg JCT drifted {:.1}% from exact",
                    drift * 100.0
                );
            }
        }
    }
    assert!(
        total_deferred > 0,
        "batching never deferred a decision point across the matrix"
    );
    assert!(
        barriers_saved > 0,
        "batching never deleted a barrier on the partitioned engine"
    );
}

/// The four-way accounting invariant and its provenance mirror: every
/// decision point is exactly one of {invoked, coalesced, elided,
/// deferred}, and the `folded` counts carried by `SchedInvoked` probe
/// records sum to the deferred total — each deferred point is folded
/// into exactly one batched invocation.
#[test]
fn folded_provenance_accounts_for_every_deferred_decision_point() {
    for (policy, mode) in [
        ("LLMSched", EngineMode::Analytic),
        ("SRTF", EngineMode::Disagg),
        ("FCFS", EngineMode::Cluster),
    ] {
        let (r, _, folded) = run(
            WorkloadKind::Mixed,
            mode,
            policy,
            Parallelism::Off,
            Some(0.2),
            true,
        );
        assert!(
            r.sched_deferred > 0,
            "{policy}/{mode:?}: nothing deferred at ε=0.2s"
        );
        assert_eq!(
            folded, r.sched_deferred,
            "{policy}/{mode:?}: folded provenance vs deferred count"
        );
    }
}

//! # llmsched — uncertainty-aware scheduling for compound LLM applications
//!
//! A from-scratch Rust reproduction of **LLMSched** (Zhu, Chen, Fan, Zhu —
//! ICDCS 2025, arXiv:2504.03444): an uncertainty-aware scheduler that cuts
//! the average job completion time of *compound LLM applications* — jobs
//! whose DAGs mix LLM inference stages, regular tool stages, and
//! LLM-generated dynamic stages — by profiling inter-stage correlations
//! with Bayesian networks, quantifying the uncertainty each stage resolves
//! (Shannon entropy / mutual information), and ε-greedily combining a
//! Most-Uncertainty-Reduction-First exploration list with a
//! Shortest-Remaining-Time-First exploitation list.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`dag`] | the LLM DAG model (templates, jobs, reveal protocol) |
//! | [`cluster`] | serving-cluster model: replica groups, latency curves, routing policies |
//! | [`sim`] | discrete-event cluster simulator with batching LLM executors |
//! | [`bayes`] | discrete Bayesian networks + information theory |
//! | [`workloads`] | the six compound-application generators, mixes, and non-stationary scenarios (drift, cold start) |
//! | [`schedulers`] | baselines: FCFS, Fair, SJF, SRTF, Argus, Decima-like, Carbyne-like |
//! | [`core`] | LLMSched itself: profiler, versioned online [`ProfileStore`], estimator, Eq. 3–6, Algorithm 1 |
//! | [`telemetry`] | observability: zero-cost-when-off probes, trace export, windowed time-series, decision provenance |
//!
//! ## Quickstart
//!
//! ```
//! use llmsched::prelude::*;
//!
//! // 1. Offline: profile historical jobs of every application.
//! let templates = all_templates();
//! let corpus = training_jobs(&AppKind::ALL, 60, 7);
//! let profiler = Profiler::train(&templates, &corpus, &ProfilerConfig::default());
//!
//! // 2. Online: schedule a mixed workload on a small cluster.
//! let mut sched = LlmSched::new(profiler, LlmSchedConfig::default());
//! let w = generate_workload(WorkloadKind::Mixed, 20, 0.9, 42);
//! let result = simulate(&WorkloadKind::Mixed.default_cluster(),
//!                       &w.templates, w.jobs, &mut sched);
//! assert_eq!(result.incomplete, 0);
//! println!("average JCT: {:.1}s", result.avg_jct_secs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use llmsched_bayes as bayes;
pub use llmsched_cluster as cluster;
pub use llmsched_core as core;
pub use llmsched_dag as dag;
pub use llmsched_schedulers as schedulers;
pub use llmsched_sim as sim;
pub use llmsched_telemetry as telemetry;
pub use llmsched_workloads as workloads;

// The profiling/belief surface, re-exported at the crate root so examples
// and downstream users need no per-crate imports: the batch profiler, the
// versioned online profile store, and the delta-driven belief state.
pub use llmsched_core::belief::{BeliefStore, JobBelief};
pub use llmsched_core::profiler::{
    AppProfile, DynamicStats, Profiler, ProfilerConfig, StructureLearner,
};
pub use llmsched_core::scheduler::{LlmSched, LlmSchedConfig};
pub use llmsched_core::store::{
    ProfileSnapshot, ProfileStore, ProfileStoreConfig, ProfileUpdate, ProfileVersion,
};

/// One import for the whole public API.
pub mod prelude {
    pub use llmsched_bayes::prelude::*;
    pub use llmsched_core::prelude::*;
    pub use llmsched_dag::prelude::*;
    pub use llmsched_schedulers::prelude::*;
    pub use llmsched_sim::prelude::*;
    pub use llmsched_workloads::prelude::*;
}
